"""Testbench execution helper.

The paper grades generated designs by compiling them together with a
benchmark-provided testbench under iverilog and checking the simulation
output.  :func:`run_testbench` reproduces that flow on top of
:class:`repro.sim.simulator.Simulator`: the design and testbench sources are
concatenated, elaborated with the testbench as the top module, simulated, and
the ``$display`` output is scanned for pass/fail markers and mismatch
counters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional

from repro.verilog.syntax import check_syntax
from repro.sim.simulator import SimulationError, Simulator

#: Markers our benchmark testbenches emit.  Generated designs never emit these
#: themselves, so their presence/absence in the captured output is a reliable
#: pass/fail signal (the same convention RTLLM/VerilogEval testbenches use).
PASS_PATTERNS = (re.compile(r"TEST\s+PASSED", re.IGNORECASE), re.compile(r"all\s+tests\s+passed", re.IGNORECASE))
FAIL_PATTERNS = (
    re.compile(r"TEST\s+FAILED", re.IGNORECASE),
    re.compile(r"MISMATCH", re.IGNORECASE),
    re.compile(r"\bERROR\b", re.IGNORECASE),
)


@dataclass
class TestbenchResult:
    """Outcome of running a design against a testbench."""

    compiled: bool
    simulated: bool
    passed: bool
    output: str = ""
    errors: List[str] = field(default_factory=list)
    simulation_time: int = 0

    @property
    def syntax_ok(self) -> bool:
        """Alias used by the syntax-quality evaluation."""
        return self.compiled


def run_testbench(
    design_source: str,
    testbench_source: str,
    top: Optional[str] = None,
    max_time: int = 200_000,
    max_events: int = 200_000,
) -> TestbenchResult:
    """Simulate ``design_source`` together with ``testbench_source``.

    Args:
        design_source: the (possibly model-generated) design under test.
        testbench_source: the benchmark testbench that instantiates the design.
        top: explicit top module name; inferred from the testbench when omitted.
        max_time: simulation time limit.
        max_events: event-count limit (guards against runaway generated code).

    Returns:
        A :class:`TestbenchResult`.  ``compiled`` mirrors iverilog's compile
        step (both sources must parse and elaborate); ``passed`` is True only
        if the simulation ran and the output contains a pass marker and no
        fail marker.
    """
    design_check = check_syntax(design_source)
    if not design_check.ok:
        return TestbenchResult(compiled=False, simulated=False, passed=False, errors=design_check.errors)
    tb_check = check_syntax(testbench_source)
    if not tb_check.ok:
        return TestbenchResult(compiled=False, simulated=False, passed=False, errors=tb_check.errors)

    combined = design_source.rstrip() + "\n\n" + testbench_source
    if top is None and tb_check.module_names:
        top = tb_check.module_names[-1]

    try:
        simulator = Simulator(combined, top=top, max_time=max_time, max_events=max_events)
    except (SimulationError, RecursionError, ValueError) as exc:
        return TestbenchResult(compiled=False, simulated=False, passed=False, errors=[str(exc)])

    result = simulator.run()
    if result.error is not None:
        return TestbenchResult(
            compiled=True,
            simulated=False,
            passed=False,
            output=result.output,
            errors=[result.error],
            simulation_time=result.time,
        )

    passed = _judge_output(result.output)
    return TestbenchResult(
        compiled=True,
        simulated=True,
        passed=passed,
        output=result.output,
        simulation_time=result.time,
    )


def _judge_output(output: str) -> bool:
    """Decide pass/fail from the captured ``$display`` output."""
    has_pass = any(pattern.search(output) for pattern in PASS_PATTERNS)
    has_fail = any(pattern.search(output) for pattern in FAIL_PATTERNS)
    return has_pass and not has_fail
