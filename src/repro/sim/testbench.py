"""Testbench execution helper.

The paper grades generated designs by compiling them together with a
benchmark-provided testbench under iverilog and checking the simulation
output.  :func:`run_testbench` reproduces that flow on top of
:class:`repro.sim.simulator.Simulator`: the design and testbench sources are
concatenated, elaborated with the testbench as the top module, simulated, and
the ``$display`` output is scanned for pass/fail markers and mismatch
counters.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.verilog.syntax import check_syntax
from repro.sim.compiled import CompiledSimulator, simulate_batch
from repro.sim.rng import VerilogRng
from repro.sim.simulator import SimulationError, SimulationResult, Simulator

#: Selectable simulation backends.  The interpreter is the semantics oracle;
#: the compiled backend is the fast path, asserted cycle-identical to it by
#: ``tests/test_sim_differential.py`` and ``tests/test_sim_golden.py``.
BACKENDS = {"interpreter": Simulator, "compiled": CompiledSimulator}

#: Backend used when callers do not pick one explicitly.  Compiled, because
#: the differential/golden harness gates every release of this default.
DEFAULT_BACKEND = "compiled"

#: Markers our benchmark testbenches emit.  Generated designs never emit these
#: themselves, so their presence/absence in the captured output is a reliable
#: pass/fail signal (the same convention RTLLM/VerilogEval testbenches use).
PASS_PATTERNS = (re.compile(r"TEST\s+PASSED", re.IGNORECASE), re.compile(r"all\s+tests\s+passed", re.IGNORECASE))
FAIL_PATTERNS = (
    re.compile(r"TEST\s+FAILED", re.IGNORECASE),
    re.compile(r"MISMATCH", re.IGNORECASE),
    re.compile(r"\bERROR\b", re.IGNORECASE),
)


@dataclass
class TestbenchResult:
    """Outcome of running a design against a testbench."""

    compiled: bool
    simulated: bool
    passed: bool
    output: str = ""
    errors: List[str] = field(default_factory=list)
    simulation_time: int = 0

    @property
    def syntax_ok(self) -> bool:
        """Alias used by the syntax-quality evaluation."""
        return self.compiled


def run_testbench(
    design_source: str,
    testbench_source: str,
    top: Optional[str] = None,
    max_time: int = 200_000,
    max_events: int = 200_000,
    backend: str = DEFAULT_BACKEND,
    random_seed: int = VerilogRng.DEFAULT_SEED,
) -> TestbenchResult:
    """Simulate ``design_source`` together with ``testbench_source``.

    Args:
        design_source: the (possibly model-generated) design under test.
        testbench_source: the benchmark testbench that instantiates the design.
        top: explicit top module name; inferred from the testbench when omitted.
        max_time: simulation time limit.
        max_events: event-count limit (guards against runaway generated code).
        backend: ``"interpreter"`` or ``"compiled"`` (see :data:`BACKENDS`).
        random_seed: seed of the ``$random`` stream; the same seed produces
            the same draw sequence on every backend.

    Returns:
        A :class:`TestbenchResult`.  ``compiled`` mirrors iverilog's compile
        step (both sources must parse and elaborate); ``passed`` is True only
        if the simulation ran and the output contains a pass marker and no
        fail marker.
    """
    try:
        simulator_cls = BACKENDS[backend]
    except KeyError:
        raise ValueError(f"unknown simulation backend {backend!r} (choose from {sorted(BACKENDS)})") from None
    design_check = check_syntax(design_source)
    if not design_check.ok:
        return TestbenchResult(compiled=False, simulated=False, passed=False, errors=design_check.errors)
    tb_check = check_syntax(testbench_source)
    if not tb_check.ok:
        return TestbenchResult(compiled=False, simulated=False, passed=False, errors=tb_check.errors)

    combined = design_source.rstrip() + "\n\n" + testbench_source
    if top is None and tb_check.module_names:
        top = tb_check.module_names[-1]

    try:
        simulator = simulator_cls(
            combined, top=top, max_time=max_time, max_events=max_events, rng=VerilogRng(random_seed)
        )
    except (SimulationError, RecursionError, ValueError) as exc:
        return TestbenchResult(compiled=False, simulated=False, passed=False, errors=[str(exc)])

    return _result_from_simulation(simulator.run())


def run_testbench_batch(
    design_sources: Sequence[str],
    testbench_source: str,
    top: Optional[str] = None,
    max_time: int = 200_000,
    max_events: int = 200_000,
    backend: str = DEFAULT_BACKEND,
    random_seed: int = VerilogRng.DEFAULT_SEED,
) -> List[TestbenchResult]:
    """Grade many candidate designs against one shared testbench.

    With the compiled backend, candidates that fit the vectorizable subset
    (purely combinational, vector-style testbench) are simulated as one NumPy
    sweep over the candidate axis (:func:`repro.sim.compiled.simulate_batch`);
    everything else falls back to per-candidate :func:`run_testbench` with
    identical results, so callers never need to know which path ran.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown simulation backend {backend!r} (choose from {sorted(BACKENDS)})")
    results: List[Optional[TestbenchResult]] = [None] * len(design_sources)
    if backend == "compiled":
        tb_check = check_syntax(testbench_source)
        if tb_check.ok:
            resolved_top = top
            if resolved_top is None and tb_check.module_names:
                resolved_top = tb_check.module_names[-1]
            eligible = [
                index for index, source in enumerate(design_sources) if check_syntax(source).ok
            ]
            batch = simulate_batch(
                [design_sources[index] for index in eligible],
                testbench_source,
                top=resolved_top,
                max_time=max_time,
                max_events=max_events,
            )
            if batch is not None:
                for index, sim_result in zip(eligible, batch):
                    if sim_result is not None:
                        results[index] = _result_from_simulation(sim_result)
    for index, source in enumerate(design_sources):
        if results[index] is None:
            results[index] = run_testbench(
                source,
                testbench_source,
                top=top,
                max_time=max_time,
                max_events=max_events,
                backend=backend,
                random_seed=random_seed,
            )
    return results  # type: ignore[return-value]


def _result_from_simulation(result: SimulationResult) -> TestbenchResult:
    if result.error is not None:
        return TestbenchResult(
            compiled=True,
            simulated=False,
            passed=False,
            output=result.output,
            errors=[result.error],
            simulation_time=result.time,
        )
    return TestbenchResult(
        compiled=True,
        simulated=True,
        passed=_judge_output(result.output),
        output=result.output,
        simulation_time=result.time,
    )


def _judge_output(output: str) -> bool:
    """Decide pass/fail from the captured ``$display`` output."""
    has_pass = any(pattern.search(output) for pattern in PASS_PATTERNS)
    has_fail = any(pattern.search(output) for pattern in FAIL_PATTERNS)
    return has_pass and not has_fail
