"""Four-state logic values.

Verilog signals take the values 0, 1, X (unknown) and Z (high impedance).  A
:class:`FourState` vector stores, for each bit, whether it is known and, if
known, whether it is 0 or 1.  Unknown bits are tracked with a mask so that
X-propagation through expressions behaves the way a real simulator (and the
paper's iverilog-based grader) would: arithmetic on unknown inputs produces
unknown outputs, comparisons against unknowns are unknown, and conditionals on
unknowns take the "unknown" branch value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

X_CHAR = "x"
Z_CHAR = "z"


@dataclass(frozen=True)
class FourState:
    """A fixed-width 4-state logic vector.

    Attributes:
        width: number of bits (>= 1).
        value: the known bit values (bits where ``unknown`` is set are 0 here).
        unknown: mask of bits that are X or Z.
        zmask: subset of ``unknown`` bits that are specifically Z.
        signed: whether arithmetic should treat the vector as signed.
    """

    width: int
    value: int
    unknown: int = 0
    zmask: int = 0
    signed: bool = False

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")
        mask = (1 << self.width) - 1
        object.__setattr__(self, "value", self.value & mask & ~self.unknown)
        object.__setattr__(self, "unknown", self.unknown & mask)
        object.__setattr__(self, "zmask", self.zmask & self.unknown)

    # -- constructors -------------------------------------------------------

    @staticmethod
    def from_int(value: int, width: int = 32, signed: bool = False) -> "FourState":
        """Build a fully-known vector from a Python integer (two's complement)."""
        mask = (1 << width) - 1
        return FourState(width=width, value=value & mask, unknown=0, signed=signed)

    @staticmethod
    def unknown_value(width: int = 32) -> "FourState":
        """Build an all-X vector."""
        mask = (1 << width) - 1
        return FourState(width=width, value=0, unknown=mask)

    @staticmethod
    def high_z(width: int = 32) -> "FourState":
        """Build an all-Z vector."""
        mask = (1 << width) - 1
        return FourState(width=width, value=0, unknown=mask, zmask=mask)

    @staticmethod
    def from_bits(bits: str, signed: bool = False) -> "FourState":
        """Build a vector from a bit string like ``"10x1z"`` (MSB first)."""
        width = len(bits)
        value = 0
        unknown = 0
        zmask = 0
        for ch in bits:
            value <<= 1
            unknown <<= 1
            zmask <<= 1
            low = ch.lower()
            if low == "1":
                value |= 1
            elif low == "0":
                pass
            elif low == X_CHAR:
                unknown |= 1
            elif low == Z_CHAR or low == "?":
                # '?' is shorthand for Z (don't-care in casez patterns).
                unknown |= 1
                zmask |= 1
            else:
                raise ValueError(f"invalid bit character {ch!r}")
        return FourState(width=width, value=value, unknown=unknown, zmask=zmask, signed=signed)

    @staticmethod
    def from_literal(width: Optional[int], base: str, digits: str, signed: bool = False) -> "FourState":
        """Build a vector from the parts of a Verilog literal (e.g. 4, 'b', '10x1')."""
        digits = digits.replace("_", "")
        base = base.lower()
        bits_per_digit = {"b": 1, "o": 3, "h": 4, "d": 0}[base]
        if base == "d":
            if any(c.lower() in (X_CHAR, Z_CHAR, "?") for c in digits):
                w = width or 32
                return FourState.unknown_value(w)
            value = int(digits) if digits else 0
            w = width or max(32, value.bit_length() or 1)
            return FourState.from_int(value, width=w, signed=signed)
        bit_string = ""
        for ch in digits:
            low = ch.lower()
            if low in (X_CHAR, Z_CHAR, "?"):
                char = X_CHAR if low == X_CHAR else Z_CHAR
                bit_string += char * bits_per_digit
            else:
                bit_string += format(int(ch, 16 if base == "h" else 8 if base == "o" else 2), f"0{bits_per_digit}b")
        if not bit_string:
            bit_string = "0"
        if width is not None:
            if len(bit_string) < width:
                pad_char = bit_string[0] if bit_string[0] in (X_CHAR, Z_CHAR) else "0"
                bit_string = pad_char * (width - len(bit_string)) + bit_string
            elif len(bit_string) > width:
                bit_string = bit_string[-width:]
        return FourState.from_bits(bit_string, signed=signed)

    # -- inspection ---------------------------------------------------------

    @property
    def is_fully_known(self) -> bool:
        """True when no bit is X or Z."""
        return self.unknown == 0

    def to_int(self) -> int:
        """Interpret the vector as an unsigned (or signed) Python integer.

        Unknown bits are treated as 0, matching how Verilog converts 4-state
        values in arithmetic contexts after X-propagation has been handled.
        """
        raw = self.value
        if self.signed and self.width > 0 and (raw >> (self.width - 1)) & 1:
            return raw - (1 << self.width)
        return raw

    def to_signed_int(self) -> int:
        """Interpret the vector as a signed integer regardless of ``signed``."""
        raw = self.value
        if self.width > 0 and (raw >> (self.width - 1)) & 1:
            return raw - (1 << self.width)
        return raw

    def bit(self, index: int) -> str:
        """Return the character ('0','1','x','z') of bit ``index`` (LSB = 0)."""
        if index < 0 or index >= self.width:
            return X_CHAR
        if (self.unknown >> index) & 1:
            return Z_CHAR if (self.zmask >> index) & 1 else X_CHAR
        return "1" if (self.value >> index) & 1 else "0"

    def to_bit_string(self) -> str:
        """Return the MSB-first bit string, e.g. ``"10x1"``."""
        return "".join(self.bit(i) for i in range(self.width - 1, -1, -1))

    def is_true(self) -> Optional[bool]:
        """Truthiness used by ``if``/``while``: True, False, or None for unknown."""
        if self.value != 0:
            return True
        if self.unknown != 0:
            return None
        return False

    # -- conversions --------------------------------------------------------

    def resize(self, width: int, signed: Optional[bool] = None) -> "FourState":
        """Zero-/sign-extend or truncate to ``width`` bits."""
        signed = self.signed if signed is None else signed
        if width == self.width:
            if signed == self.signed:
                return self
            return FourState(self.width, self.value, self.unknown, self.zmask, signed)
        if width < self.width:
            return FourState(width, self.value, self.unknown, self.zmask, signed)
        extension_bits = width - self.width
        msb_index = self.width - 1
        value = self.value
        unknown = self.unknown
        zmask = self.zmask
        if self.signed and not (self.unknown >> msb_index) & 1 and (self.value >> msb_index) & 1:
            value |= ((1 << extension_bits) - 1) << self.width
        if (self.unknown >> msb_index) & 1:
            unknown |= ((1 << extension_bits) - 1) << self.width
            if (self.zmask >> msb_index) & 1:
                zmask |= ((1 << extension_bits) - 1) << self.width
        return FourState(width, value, unknown, zmask, signed)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.width}'b{self.to_bit_string()}"


Valueish = Union[FourState, int, bool]


def as_four_state(value: Valueish, width: int = 32) -> FourState:
    """Coerce ``value`` into a :class:`FourState` of at least ``width`` bits."""
    if isinstance(value, FourState):
        return value
    if isinstance(value, bool):
        return FourState.from_int(int(value), width=1)
    return FourState.from_int(int(value), width=width)
