"""Tokenization substrate: trainable BPE with Verilog-aware special tokens."""

from repro.tokenizer.vocab import SpecialTokens, Vocabulary
from repro.tokenizer.bpe import BPETokenizer

__all__ = ["SpecialTokens", "Vocabulary", "BPETokenizer"]
