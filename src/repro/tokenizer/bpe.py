"""Trainable byte-pair-encoding tokenizer.

This is the reproduction's substitute for the HuggingFace BPE tokenizers that
CodeLlama and CodeT5p ship with.  It implements the classic BPE training loop
(count adjacent symbol pairs, merge the most frequent, repeat) over a
whitespace-aware pre-tokenization, and encodes/decodes text with learned
merges.  Special tokens — most importantly ``[FRAG]`` — are always atomic: they
are split out before pre-tokenization and never participate in merges, so a
fragment boundary is always exactly one token, which the syntax-enriched label
construction (:mod:`repro.core.labels`) relies on.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.tokenizer.vocab import SpecialTokens, Vocabulary

#: Marker for a leading space, mirroring the GPT-2/SentencePiece convention.
_SPACE_MARKER = "Ġ"
#: Marker for a newline.
_NEWLINE_MARKER = "Ċ"

_WORD_PATTERN = re.compile(
    r"""[A-Za-z_][A-Za-z0-9_$]*   # identifiers / keywords
      | [0-9]+'[bodhBODH][0-9a-fA-FxzXZ_?]+  # sized literals
      | [0-9]+                   # plain numbers
      | [^\sA-Za-z0-9_]+         # operator / punctuation runs
      """,
    re.VERBOSE,
)


class BPETokenizer:
    """Byte-pair-encoding tokenizer with atomic special tokens."""

    def __init__(self, special: Optional[SpecialTokens] = None) -> None:
        self.special = special or SpecialTokens()
        self.vocab = Vocabulary(special=self.special)
        self.merges: List[Tuple[str, str]] = []
        self._merge_ranks: Dict[Tuple[str, str], int] = {}
        self._special_pattern = re.compile(
            "(" + "|".join(re.escape(tok) for tok in self.special.as_list()) + ")"
        )
        self._encode_cache: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #

    def train(self, corpus: Iterable[str], vocab_size: int = 2000, min_frequency: int = 2) -> None:
        """Learn BPE merges from ``corpus``.

        Args:
            corpus: iterable of text documents (code and natural language).
            vocab_size: target total vocabulary size (including specials and
                single characters).
            min_frequency: pairs occurring fewer times than this are not merged.
        """
        word_counts: Counter = Counter()
        for document in corpus:
            for word in self._pre_tokenize(document):
                word_counts[word] += 1

        # Start from characters (always including the whitespace markers so
        # indentation/newlines survive encode/decode even if the training
        # corpus happens not to contain them).
        splits: Dict[str, List[str]] = {word: list(word) for word in word_counts}
        alphabet = sorted({ch for word in word_counts for ch in word} | {_SPACE_MARKER, _NEWLINE_MARKER})
        for ch in alphabet:
            self.vocab.add(ch)

        self.merges = []
        while len(self.vocab) < vocab_size:
            pair_counts: Counter = Counter()
            for word, count in word_counts.items():
                symbols = splits[word]
                for i in range(len(symbols) - 1):
                    pair_counts[(symbols[i], symbols[i + 1])] += count
            if not pair_counts:
                break
            best_pair, best_count = pair_counts.most_common(1)[0]
            if best_count < min_frequency:
                break
            merged = best_pair[0] + best_pair[1]
            self.merges.append(best_pair)
            self.vocab.add(merged)
            for word in splits:
                splits[word] = self._apply_merge(splits[word], best_pair, merged)
        self._merge_ranks = {pair: rank for rank, pair in enumerate(self.merges)}
        self._encode_cache = {}

    @staticmethod
    def _apply_merge(symbols: List[str], pair: Tuple[str, str], merged: str) -> List[str]:
        out: List[str] = []
        i = 0
        while i < len(symbols):
            if i < len(symbols) - 1 and symbols[i] == pair[0] and symbols[i + 1] == pair[1]:
                out.append(merged)
                i += 2
            else:
                out.append(symbols[i])
                i += 1
        return out

    # ------------------------------------------------------------------ #
    # Pre-tokenization
    # ------------------------------------------------------------------ #

    def _pre_tokenize(self, text: str) -> List[str]:
        """Split text into words, marking leading whitespace and newlines."""
        words: List[str] = []
        for chunk in self._special_pattern.split(text):
            if not chunk or chunk in self.special.as_list():
                continue
            pos = 0
            pending_space = ""
            while pos < len(chunk):
                ch = chunk[pos]
                if ch == "\n":
                    words.append(_NEWLINE_MARKER)
                    pending_space = ""
                    pos += 1
                    continue
                if ch in " \t":
                    pending_space = _SPACE_MARKER
                    pos += 1
                    continue
                match = _WORD_PATTERN.match(chunk, pos)
                if match is None:
                    pos += 1
                    continue
                words.append(pending_space + match.group(0))
                pending_space = ""
                pos = match.end()
        return words

    # ------------------------------------------------------------------ #
    # Encoding / decoding
    # ------------------------------------------------------------------ #

    def encode_to_tokens(self, text: str) -> List[str]:
        """Encode ``text`` into a list of string tokens (BPE pieces + specials)."""
        pieces: List[str] = []
        for chunk in self._special_pattern.split(text):
            if not chunk:
                continue
            if chunk in self.special.as_list():
                pieces.append(chunk)
                continue
            for word in self._pre_tokenize(chunk):
                pieces.extend(self._encode_word(word))
        return pieces

    def encode(self, text: str, add_bos: bool = False, add_eos: bool = False) -> List[int]:
        """Encode ``text`` into token ids."""
        ids = [self.vocab.token_to_id(token) for token in self.encode_to_tokens(text)]
        if add_bos:
            ids.insert(0, self.vocab.bos_id)
        if add_eos:
            ids.append(self.vocab.eos_id)
        return ids

    def _encode_word(self, word: str) -> List[str]:
        cached = self._encode_cache.get(word)
        if cached is not None:
            return cached
        symbols = list(word)
        while len(symbols) > 1:
            best_rank = None
            best_index = -1
            for i in range(len(symbols) - 1):
                rank = self._merge_ranks.get((symbols[i], symbols[i + 1]))
                if rank is not None and (best_rank is None or rank < best_rank):
                    best_rank = rank
                    best_index = i
            if best_rank is None:
                break
            symbols[best_index : best_index + 2] = [symbols[best_index] + symbols[best_index + 1]]
        result = [s if s in self.vocab else self.special.unk for s in symbols]
        self._encode_cache[word] = result
        return result

    def decode_tokens(self, tokens: Sequence[str]) -> str:
        """Reassemble text from string tokens."""
        out: List[str] = []
        for token in tokens:
            if token in (self.special.pad, self.special.ignore, self.special.bos, self.special.eos):
                continue
            if token == self.special.frag:
                out.append(self.special.frag)
                continue
            text = token.replace(_SPACE_MARKER, " ").replace(_NEWLINE_MARKER, "\n")
            out.append(text)
        return "".join(out)

    def decode(self, ids: Sequence[int], keep_frag: bool = True) -> str:
        """Decode token ids back to text.

        Args:
            ids: token ids.
            keep_frag: when False, ``[FRAG]`` markers are stripped so the
                result is plain Verilog code.
        """
        tokens = [self.vocab.id_to_token(i) for i in ids]
        text = self.decode_tokens(tokens)
        if not keep_frag:
            text = text.replace(self.special.frag, "")
        return text

    @property
    def vocab_size(self) -> int:
        """Total number of tokens in the vocabulary."""
        return len(self.vocab)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path: Union[str, Path]) -> None:
        """Write the tokenizer (vocab + merges) to a JSON file."""
        payload = {
            "special": self.special.__dict__,
            "tokens": self.vocab.tokens(),
            "merges": [list(pair) for pair in self.merges],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BPETokenizer":
        """Load a tokenizer previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        tokenizer = cls(special=SpecialTokens(**payload["special"]))
        for token in payload["tokens"]:
            tokenizer.vocab.add(token)
        tokenizer.merges = [tuple(pair) for pair in payload["merges"]]
        tokenizer._merge_ranks = {pair: rank for rank, pair in enumerate(tokenizer.merges)}
        return tokenizer
