"""Vocabulary and special tokens.

The paper's method extends a conventional BPE vocabulary with three special
tokens:

* ``[FRAG]`` — the fragment-boundary marker inserted by
  :func:`repro.verilog.fragments.insert_frag_markers`;
* ``[PAD]`` — padding appended to head labels so all heads share the base
  label's sequence length (Fig. 4, "Before" panel);
* ``[IGNORE]`` — positions excluded from the loss (Fig. 4, "After" panel).

plus the usual BOS/EOS/UNK bookkeeping tokens.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union


@dataclass(frozen=True)
class SpecialTokens:
    """Names of the special tokens used throughout the reproduction."""

    pad: str = "[PAD]"
    unk: str = "[UNK]"
    bos: str = "<s>"
    eos: str = "</s>"
    frag: str = "[FRAG]"
    ignore: str = "[IGNORE]"

    def as_list(self) -> List[str]:
        """All special tokens in canonical (id-assignment) order."""
        return [self.pad, self.unk, self.bos, self.eos, self.frag, self.ignore]


class Vocabulary:
    """A bidirectional token <-> id mapping with special-token bookkeeping."""

    def __init__(self, tokens: Iterable[str] = (), special: Optional[SpecialTokens] = None) -> None:
        self.special = special or SpecialTokens()
        self._token_to_id: Dict[str, int] = {}
        self._id_to_token: List[str] = []
        for token in self.special.as_list():
            self.add(token)
        for token in tokens:
            self.add(token)

    # -- mutation -----------------------------------------------------------

    def add(self, token: str) -> int:
        """Add ``token`` (idempotent) and return its id."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    # -- lookup -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def token_to_id(self, token: str) -> int:
        """Return the id of ``token``, or the UNK id if unknown."""
        return self._token_to_id.get(token, self._token_to_id[self.special.unk])

    def id_to_token(self, token_id: int) -> str:
        """Return the token with id ``token_id``."""
        if 0 <= token_id < len(self._id_to_token):
            return self._id_to_token[token_id]
        return self.special.unk

    @property
    def pad_id(self) -> int:
        return self._token_to_id[self.special.pad]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[self.special.unk]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[self.special.bos]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[self.special.eos]

    @property
    def frag_id(self) -> int:
        return self._token_to_id[self.special.frag]

    @property
    def ignore_id(self) -> int:
        return self._token_to_id[self.special.ignore]

    def tokens(self) -> List[str]:
        """All tokens in id order."""
        return list(self._id_to_token)

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Serialise the vocabulary to a JSON file."""
        payload = {"tokens": self._id_to_token, "special": self.special.__dict__}
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Vocabulary":
        """Load a vocabulary previously written by :meth:`save`."""
        payload = json.loads(Path(path).read_text())
        special = SpecialTokens(**payload["special"])
        vocab = cls(special=special)
        for token in payload["tokens"]:
            vocab.add(token)
        return vocab
