"""Production traffic harness: traces, replay, SLO admission, ops dashboard.

This package turns the serving stack into something that can be *operated*:

* :mod:`repro.traffic.trace` — seeded synthetic traffic traces
  (Poisson/bursty arrivals, tenant preamble groups, cancellation and
  deadline churn) with canonical byte-stable JSON serialization;
* :mod:`repro.traffic.clock` — the wall clock and the deterministic
  :class:`~repro.traffic.clock.SimulatedClock` the engine's injected
  ``clock`` accepts;
* :mod:`repro.traffic.replay` — trace replay against
  :class:`~repro.serving.engine.ServingEngine` (simulated or wall clock),
  :class:`~repro.serving.server.AsyncServingEngine` and
  :class:`~repro.serving.router.Router`, producing one
  :class:`~repro.traffic.replay.ReplayReport` schema;
* :mod:`repro.traffic.admission` — SLO-aware admission control (per-tenant
  token buckets, rolling-p95 breach detection with hysteresis);
* :mod:`repro.traffic.dashboard` — the dependency-free ANSI ops dashboard
  (pure snapshot → frame rendering).

See ``docs/traffic.md`` for the trace schema and the operational model.
"""

from repro.traffic.admission import (
    AdmissionController,
    AdmissionDecision,
    BreachDetector,
    SLOConfig,
    TokenBucket,
)
from repro.traffic.clock import SimulatedClock, WallClock
from repro.traffic.dashboard import (
    DashboardSnapshot,
    OpsDashboard,
    render_frame,
    snapshot_from_engine,
    snapshot_from_router,
)
from repro.traffic.replay import (
    ReplayReport,
    RequestOutcome,
    StepCostModel,
    replay_trace,
    replay_trace_async,
    replay_trace_router,
)
from repro.traffic.trace import (
    CLASS_PRIORITY,
    TRAFFIC_CLASSES,
    Trace,
    TraceConfig,
    TraceRequest,
    generate_trace,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BreachDetector",
    "SLOConfig",
    "TokenBucket",
    "SimulatedClock",
    "WallClock",
    "DashboardSnapshot",
    "OpsDashboard",
    "render_frame",
    "snapshot_from_engine",
    "snapshot_from_router",
    "ReplayReport",
    "RequestOutcome",
    "StepCostModel",
    "replay_trace",
    "replay_trace_async",
    "replay_trace_router",
    "Trace",
    "TraceConfig",
    "TraceRequest",
    "CLASS_PRIORITY",
    "TRAFFIC_CLASSES",
    "generate_trace",
]
