"""SLO-aware admission control layered on the priority scheduler.

The engine's :class:`~repro.serving.scheduler.PriorityConfig` decides *order*
among admitted requests; this module decides *whether* a request enters the
engine at all.  Three pieces:

* :class:`TokenBucket` — classic per-tenant rate limiter denominated in
  decode-token budget.  Refills continuously at ``rate`` up to ``burst``;
  a request is charged its ``max_new_tokens`` on admission.  The level is
  clamped at zero on the spend side by construction (a spend larger than the
  level is rejected, never applied), so accounting can never go negative —
  the fuzz suite asserts this invariant.
* :class:`BreachDetector` — rolling-window SLO monitor.  It ingests
  interactive TTFT samples stamped with the (possibly virtual) clock,
  expires samples older than ``window_seconds``, and trips when the window
  p95 exceeds ``target_p95_ttft``.  Recovery is *hysteretic*: the breach
  only clears once p95 falls below ``recover_under * target`` (and an empty
  window — a quiet period — also clears it), so the controller does not
  flap shed/no-shed at the boundary.
* :class:`AdmissionController` — combines both into a single
  :meth:`~AdmissionController.decide` call the replayer consults before
  ``submit``.  Policy, in order:

  1. interactive traffic is **never shed** — at worst it is deferred when
     its tenant's bucket is empty;
  2. during a breach window, bulk traffic is **shed** (rejected outright)
     to protect the interactive p95;
  3. outside a breach, bulk traffic with an empty bucket is **deferred**
     (retried by the replayer on a later tick);
  4. everything else is admitted and charged to its tenant's bucket.

Decisions and per-tenant counters are exposed via :meth:`snapshot` for the
ops dashboard and the replay report.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Deque, Dict, Optional, Tuple

from repro.evalbench.stats import percentile


class AdmissionDecision(Enum):
    """Outcome of one admission consult."""

    ADMIT = "admit"
    DEFER = "defer"
    SHED = "shed"


class TokenBucket:
    """Continuous-refill token bucket; levels are never negative.

    Args:
        rate: Refill rate in tokens per second.
        burst: Capacity cap (also the initial level).

    The bucket is lazy: the level is brought up to date against the supplied
    timestamp on every call, so it works identically under a wall clock and
    a simulated clock.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._level = float(burst)
        self._stamp: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._stamp is None:
            self._stamp = now
            return
        elapsed = max(0.0, now - self._stamp)
        self._level = min(self.burst, self._level + elapsed * self.rate)
        self._stamp = now

    def level(self, now: float) -> float:
        """Current token level after refilling up to ``now``."""
        self._refill(now)
        return self._level

    def try_spend(self, tokens: float, now: float) -> bool:
        """Spend ``tokens`` if available; returns whether the spend applied.

        A failed spend leaves the level untouched — the level can therefore
        never go below zero.
        """
        if tokens < 0:
            raise ValueError("cannot spend a negative token amount")
        self._refill(now)
        if tokens > self._level:
            return False
        self._level -= tokens
        return True


@dataclass
class SLOConfig:
    """Knobs for the admission controller.

    Attributes:
        target_p95_ttft: Interactive TTFT p95 target in seconds; the breach
            detector trips when the rolling window exceeds it.
        window_seconds: Rolling-window length for TTFT samples.
        recover_under: Hysteresis factor — a breach clears only once window
            p95 drops below ``recover_under * target_p95_ttft``.
        min_samples: Minimum window population before a breach can trip
            (small windows have noisy percentiles).
        tenant_rate: Per-tenant bucket refill rate in decode tokens/sec
            (``None`` disables tenant rate limiting).
        tenant_burst: Per-tenant bucket capacity in decode tokens.
    """

    target_p95_ttft: float = 0.5
    window_seconds: float = 10.0
    recover_under: float = 0.8
    min_samples: int = 5
    tenant_rate: Optional[float] = None
    tenant_burst: float = 256.0

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range knobs."""
        if self.target_p95_ttft <= 0:
            raise ValueError("target_p95_ttft must be positive")
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if not 0.0 < self.recover_under <= 1.0:
            raise ValueError("recover_under must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")


class BreachDetector:
    """Rolling-window p95 monitor with hysteretic recovery."""

    def __init__(self, config: SLOConfig) -> None:
        config.validate()
        self.config = config
        self._samples: Deque[Tuple[float, float]] = deque()
        self._breached = False
        self.breach_count = 0

    def _expire(self, now: float) -> None:
        horizon = now - self.config.window_seconds
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def observe(self, ttft_seconds: float, now: float) -> None:
        """Ingest one interactive TTFT sample stamped at ``now``."""
        self._samples.append((now, float(ttft_seconds)))
        self.update(now)

    def window_p95(self, now: float) -> float:
        """p95 of the samples currently inside the window (0.0 if empty)."""
        self._expire(now)
        return percentile([v for _, v in self._samples], 95)

    def update(self, now: float) -> bool:
        """Re-evaluate breach state at ``now`` and return it.

        Trip: window has at least ``min_samples`` samples and p95 exceeds
        the target.  Clear: p95 below ``recover_under * target`` — or the
        window drained entirely (a quiet period heals the detector).
        """
        self._expire(now)
        values = [v for _, v in self._samples]
        p95 = percentile(values, 95)
        if not self._breached:
            if len(values) >= self.config.min_samples and p95 > self.config.target_p95_ttft:
                self._breached = True
                self.breach_count += 1
        else:
            if not values or p95 < self.config.recover_under * self.config.target_p95_ttft:
                self._breached = False
        return self._breached

    @property
    def breached(self) -> bool:
        """Breach state as of the last ``update``/``observe``."""
        return self._breached


@dataclass
class TenantCounters:
    """Per-tenant admission bookkeeping (exposed in snapshots)."""

    admitted: int = 0
    deferred: int = 0
    shed: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"admitted": self.admitted, "deferred": self.deferred, "shed": self.shed}


@dataclass
class AdmissionController:
    """SLO-aware gate consulted before every ``submit``.

    Args:
        config: SLO and rate-limit knobs.

    Usage: call :meth:`observe_ttft` with each newly-first-tokened
    interactive request's TTFT, then :meth:`decide` before submitting.
    ``decide`` both returns the decision and updates the per-tenant
    counters, so one consult per (request, attempt) is the contract —
    a deferred request consulted again later counts as a new attempt.
    """

    config: SLOConfig = field(default_factory=SLOConfig)

    def __post_init__(self) -> None:
        self.config.validate()
        self.detector = BreachDetector(self.config)
        self.buckets: Dict[str, TokenBucket] = {}
        self.tenants: Dict[str, TenantCounters] = {}

    def _bucket(self, tenant: str) -> Optional[TokenBucket]:
        if self.config.tenant_rate is None:
            return None
        if tenant not in self.buckets:
            self.buckets[tenant] = TokenBucket(
                rate=self.config.tenant_rate, burst=self.config.tenant_burst
            )
        return self.buckets[tenant]

    def _counters(self, tenant: str) -> TenantCounters:
        if tenant not in self.tenants:
            self.tenants[tenant] = TenantCounters()
        return self.tenants[tenant]

    def observe_ttft(self, ttft_seconds: float, now: float) -> None:
        """Feed one interactive TTFT sample to the breach detector."""
        self.detector.observe(ttft_seconds, now)

    def decide(
        self, tenant: str, traffic_class: str, decode_tokens: int, now: float
    ) -> AdmissionDecision:
        """Admission decision for one request attempt (updates counters).

        Args:
            tenant: Tenant id the request belongs to.
            traffic_class: ``"interactive"`` or ``"bulk"``.
            decode_tokens: Token budget charged to the tenant's bucket.
            now: Current (possibly virtual) time.
        """
        counters = self._counters(tenant)
        breached = self.detector.update(now)

        # Shed only ever applies to bulk traffic, and only during a breach.
        if traffic_class == "bulk" and breached:
            counters.shed += 1
            return AdmissionDecision.SHED

        bucket = self._bucket(tenant)
        if bucket is not None:
            # Clamp the charge to the bucket capacity: a request whose budget
            # exceeds `burst` would otherwise defer forever, which is
            # starvation, not rate limiting.
            charge = min(float(decode_tokens), bucket.burst)
            if not bucket.try_spend(charge, now):
                counters.deferred += 1
                return AdmissionDecision.DEFER

        counters.admitted += 1
        return AdmissionDecision.ADMIT

    def snapshot(self, now: float) -> Dict:
        """Dashboard/report view of the controller's state at ``now``."""
        return {
            "breached": self.detector.breached,
            "breach_count": self.detector.breach_count,
            "window_p95_ttft": self.detector.window_p95(now),
            "target_p95_ttft": self.config.target_p95_ttft,
            "tenants": {t: c.to_dict() for t, c in sorted(self.tenants.items())},
            "bucket_levels": {
                t: round(b.level(now), 6) for t, b in sorted(self.buckets.items())
            },
        }


__all__ = [
    "AdmissionDecision",
    "TokenBucket",
    "SLOConfig",
    "BreachDetector",
    "TenantCounters",
    "AdmissionController",
]
