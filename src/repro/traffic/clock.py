"""Time sources for the traffic harness.

The serving engine stamps every event (submission, first token, commits,
deadline checks) through an injected ``clock`` callable —
:attr:`repro.serving.engine_core.EngineCore.clock`.  Two implementations
live here:

* :class:`WallClock` — thin wrapper over ``time.perf_counter`` plus a real
  ``sleep``; what production replay against :class:`~repro.serving.server
  .AsyncServingEngine` uses.
* :class:`SimulatedClock` — a purely virtual clock that only moves when the
  replayer tells it to.  Driving an engine with a simulated clock makes every
  timestamp-derived quantity (TTFT, inter-token gaps, deadline expiry,
  scheduler latency) a deterministic function of the trace and the step-cost
  model, so CI can assert byte-identical replay reports across runs.

Both expose the same tiny interface: calling the object returns the current
time in (virtual) seconds, and ``sleep``/``advance`` move it forward.  The
engine only ever *reads* the clock; only the replay loop advances it.
"""

from __future__ import annotations

import time


class WallClock:
    """Real time: ``perf_counter`` now, ``time.sleep`` to wait."""

    def __call__(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` (no-op for non-positive values)."""
        if seconds > 0:
            time.sleep(seconds)


class SimulatedClock:
    """Deterministic virtual clock, advanced explicitly by the replay loop.

    Args:
        start: Initial virtual time in seconds.

    The clock never moves on its own: two replays that perform the same
    sequence of ``advance``/``sleep`` calls observe identical timestamps,
    which is the foundation of the harness's reproducibility guarantees.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move virtual time forward by ``seconds`` and return the new time.

        Raises:
            ValueError: Negative ``seconds`` — virtual time is monotonic.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move virtual time forward to ``timestamp`` (no-op if in the past)."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def sleep(self, seconds: float) -> None:
        """Virtual sleep: advances the clock without blocking."""
        if seconds > 0:
            self.advance(seconds)


__all__ = ["WallClock", "SimulatedClock"]
