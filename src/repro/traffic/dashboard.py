"""Dependency-free ANSI ops dashboard for the serving stack.

The dashboard is split into two pure layers so it is testable without a
terminal:

* :class:`DashboardSnapshot` — a frozen, JSON-compatible view of the
  serving state at one instant: request throughput, TTFT/ITL percentiles,
  KV-pool occupancy, prefix-cache hit rate, and per-tenant admission
  counters.  Built from the engine's existing observability surfaces
  (:meth:`~repro.serving.engine.ServingEngine.stream_metrics`,
  :meth:`~repro.serving.engine.ServingEngine.kv_pool_stats`,
  :meth:`~repro.serving.engine.ServingEngine.prefix_cache_stats`) via
  :func:`snapshot_from_engine`, or from a router's aggregates via
  :func:`snapshot_from_router`.
* :func:`render_frame` — a **pure function** ``snapshot → str``.  No TTY
  probing, no timers, no global state: the same snapshot always renders the
  same frame, which is what the tests and the CI smoke assert.  ANSI color
  is opt-in (``color=True``); the default output is plain text that diffs
  cleanly.

:class:`OpsDashboard` is the thin live wrapper: it re-snapshots a source on
demand and returns frames, leaving printing/looping to the caller (see
``examples/traffic_demo.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.evalbench.stats import percentile

_RESET = "\x1b[0m"
_BOLD = "\x1b[1m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"


@dataclass
class DashboardSnapshot:
    """One instant of serving state, as the dashboard sees it.

    All fields are plain scalars/dicts so a snapshot round-trips through
    JSON and two equal snapshots render byte-identical frames.
    """

    timestamp: float = 0.0
    active_requests: int = 0
    prefilling_requests: int = 0
    finished_requests: int = 0
    requests_per_second: float = 0.0
    tokens_per_second: float = 0.0
    ttft_p50: float = 0.0
    ttft_p95: float = 0.0
    itl_p50: float = 0.0
    itl_p95: float = 0.0
    kv_occupancy: float = 0.0
    kv_blocks_in_use: int = 0
    kv_blocks_total: int = 0
    prefix_hit_rate: float = 0.0
    prefill_savings: float = 0.0
    slo_breached: bool = False
    slo_target_p95_ttft: Optional[float] = None
    slo_window_p95_ttft: Optional[float] = None
    tenants: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict) -> "DashboardSnapshot":
        return cls(**payload)


def snapshot_from_engine(
    engine,
    finished_ids: Optional[List[str]] = None,
    window_seconds: float = 0.0,
    admission_snapshot: Optional[Dict] = None,
    now: Optional[float] = None,
) -> DashboardSnapshot:
    """Build a snapshot from a :class:`ServingEngine`'s metric surfaces.

    Args:
        engine: The engine to observe.
        finished_ids: Request ids whose ``stream_metrics`` feed the
            TTFT/ITL percentiles and the throughput counters (callers track
            completions; the engine itself does not enumerate them).
        window_seconds: Elapsed seconds the rate columns divide by
            (0 → rates are reported as 0.0).
        admission_snapshot: Optional
            :meth:`~repro.traffic.admission.AdmissionController.snapshot`
            payload for the SLO row and per-tenant table.
        now: Timestamp to stamp (defaults to the engine's clock).
    """
    finished_ids = finished_ids or []
    ttfts: List[float] = []
    itls: List[float] = []
    total_tokens = 0
    for rid in finished_ids:
        metrics = engine.stream_metrics(rid)
        if metrics["ttft_seconds"] is not None:
            ttfts.append(metrics["ttft_seconds"])
        itls.extend(metrics["inter_token_seconds"])
        total_tokens += sum(n for _, n in metrics["commit_events"])
    kv = engine.kv_pool_stats()
    prefix = engine.prefix_cache_stats()
    snapshot = DashboardSnapshot(
        timestamp=float(now if now is not None else engine.core.clock()),
        active_requests=engine.num_active,
        prefilling_requests=engine.num_prefilling,
        finished_requests=len(finished_ids),
        requests_per_second=len(finished_ids) / window_seconds if window_seconds else 0.0,
        tokens_per_second=total_tokens / window_seconds if window_seconds else 0.0,
        ttft_p50=percentile(ttfts, 50),
        ttft_p95=percentile(ttfts, 95),
        itl_p50=percentile(itls, 50),
        itl_p95=percentile(itls, 95),
        kv_occupancy=float(kv.get("occupancy", 0.0)),
        kv_blocks_in_use=int(kv.get("blocks_in_use", 0)),
        kv_blocks_total=int(kv.get("num_blocks", 0)),
        prefix_hit_rate=float(prefix.get("hit_rate", 0.0)),
        prefill_savings=float(prefix.get("prefill_savings", 0.0)),
    )
    if admission_snapshot is not None:
        snapshot.slo_breached = bool(admission_snapshot.get("breached", False))
        snapshot.slo_target_p95_ttft = admission_snapshot.get("target_p95_ttft")
        snapshot.slo_window_p95_ttft = admission_snapshot.get("window_p95_ttft")
        snapshot.tenants = {
            tenant: dict(counters)
            for tenant, counters in admission_snapshot.get("tenants", {}).items()
        }
    return snapshot


def snapshot_from_router(router, now: float = 0.0) -> DashboardSnapshot:
    """Build a snapshot from a :class:`Router`'s aggregate stat surfaces."""
    kv = router.kv_pool_stats().get("aggregate", {})
    prefix = router.prefix_cache_stats().get("aggregate", {})
    fleet = router.fleet_stats().get("aggregate", {})
    finished = sum(1 for record in router._requests.values() if record.done)
    return DashboardSnapshot(
        timestamp=float(now),
        active_requests=int(fleet.get("num_active", 0)),
        prefilling_requests=int(fleet.get("num_prefilling", 0)),
        finished_requests=finished,
        kv_occupancy=float(kv.get("occupancy", 0.0)),
        kv_blocks_in_use=int(kv.get("blocks_in_use", 0)),
        kv_blocks_total=int(kv.get("num_blocks", 0)),
        prefix_hit_rate=float(prefix.get("hit_rate", 0.0)),
        prefill_savings=float(prefix.get("prefill_savings", 0.0)),
    )


def _bar(fraction: float, width: int) -> str:
    """A ``[####----]`` occupancy bar; fraction clamped to [0, 1]."""
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def render_frame(snapshot: DashboardSnapshot, width: int = 72, color: bool = False) -> str:
    """Render one dashboard frame from a snapshot — pure, TTY-free.

    Args:
        snapshot: The state to render.
        width: Total frame width in characters (minimum 40).
        color: Emit ANSI color codes; ``False`` (default) yields plain
            ASCII, which is what the tests compare.

    Returns:
        A multi-line string; same snapshot + arguments ⇒ same string.
    """
    width = max(40, width)
    bar_width = max(10, width - 34)
    rule = "=" * width
    lines = [
        rule,
        _paint(f" serving ops @ t={snapshot.timestamp:9.3f}s".ljust(width), _BOLD, color),
        rule,
        (
            f" requests  active {snapshot.active_requests:4d}"
            f"  prefilling {snapshot.prefilling_requests:4d}"
            f"  finished {snapshot.finished_requests:5d}"
        ),
        (
            f" rates     {snapshot.requests_per_second:8.2f} req/s"
            f"   {snapshot.tokens_per_second:9.1f} tok/s"
        ),
        (
            f" ttft      p50 {snapshot.ttft_p50 * 1e3:8.1f} ms"
            f"   p95 {snapshot.ttft_p95 * 1e3:8.1f} ms"
        ),
        (
            f" itl       p50 {snapshot.itl_p50 * 1e3:8.1f} ms"
            f"   p95 {snapshot.itl_p95 * 1e3:8.1f} ms"
        ),
        (
            f" kv pool   {_bar(snapshot.kv_occupancy, bar_width)}"
            f" {snapshot.kv_occupancy * 100:5.1f}%"
            f"  ({snapshot.kv_blocks_in_use}/{snapshot.kv_blocks_total} blocks)"
        ),
        (
            f" prefix    hit rate {snapshot.prefix_hit_rate * 100:5.1f}%"
            f"   prefill savings {snapshot.prefill_savings * 100:5.1f}%"
        ),
    ]
    if snapshot.slo_target_p95_ttft is not None:
        state = "BREACH" if snapshot.slo_breached else "ok"
        code = _RED if snapshot.slo_breached else _GREEN
        window = snapshot.slo_window_p95_ttft or 0.0
        lines.append(
            " slo       "
            + _paint(f"[{state}]", code, color)
            + f" window p95 {window * 1e3:8.1f} ms"
            + f" / target {snapshot.slo_target_p95_ttft * 1e3:8.1f} ms"
        )
    if snapshot.tenants:
        lines.append("-" * width)
        lines.append(" tenant            admitted  deferred      shed")
        for tenant in sorted(snapshot.tenants):
            counters = snapshot.tenants[tenant]
            shed = counters.get("shed", 0)
            row = (
                f" {tenant:<16}"
                f" {counters.get('admitted', 0):9d}"
                f" {counters.get('deferred', 0):9d}"
                f" {shed:9d}"
            )
            lines.append(_paint(row, _YELLOW, color) if shed else row)
    lines.append(rule)
    return "\n".join(lines)


class OpsDashboard:
    """Live wrapper: snapshot a source on demand and render frames.

    Args:
        engine: Engine to observe (mutually exclusive with ``router``).
        router: Router to observe.
        width: Frame width passed to :func:`render_frame`.
        color: ANSI color toggle passed to :func:`render_frame`.

    The wrapper owns only bookkeeping (which requests finished, when the
    window started); all rendering goes through the pure
    :func:`render_frame`, so everything it can display is testable headless.
    """

    def __init__(self, engine=None, router=None, width: int = 72, color: bool = False) -> None:
        if (engine is None) == (router is None):
            raise ValueError("pass exactly one of engine= or router=")
        self.engine = engine
        self.router = router
        self.width = width
        self.color = color
        self.finished_ids: List[str] = []
        self._window_start: Optional[float] = None

    def note_finished(self, request_id: str) -> None:
        """Record a completed request id (feeds the latency percentiles)."""
        self.finished_ids.append(request_id)

    def snapshot(self, admission_snapshot: Optional[Dict] = None) -> DashboardSnapshot:
        """Snapshot the observed source now."""
        if self.router is not None:
            return snapshot_from_router(self.router)
        now = self.engine.core.clock()
        if self._window_start is None:
            self._window_start = now
        return snapshot_from_engine(
            self.engine,
            finished_ids=self.finished_ids,
            window_seconds=now - self._window_start,
            admission_snapshot=admission_snapshot,
            now=now,
        )

    def frame(self, admission_snapshot: Optional[Dict] = None) -> str:
        """Snapshot and render one frame."""
        return render_frame(self.snapshot(admission_snapshot), self.width, self.color)


__all__ = [
    "DashboardSnapshot",
    "snapshot_from_engine",
    "snapshot_from_router",
    "render_frame",
    "OpsDashboard",
]
