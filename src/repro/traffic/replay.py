"""Trace replay against the serving stack, on a wall or simulated clock.

:func:`replay_trace` drives a :class:`~repro.serving.engine.ServingEngine`
through a :class:`~repro.traffic.trace.Trace` synchronously: submit requests
as their arrival times come due, consult the optional
:class:`~repro.traffic.admission.AdmissionController` before each submit,
issue scheduled cancellations, and step the engine while advancing the
clock.  Two clock regimes share the one loop:

* **simulated** (:class:`~repro.traffic.clock.SimulatedClock`) — the engine
  must have been built with the *same* clock object.  After every
  ``engine.step()`` the loop advances virtual time by the
  :class:`StepCostModel` (a fixed per-step cost plus per-token prefill and
  decode costs measured from the engine's own counters), and idle gaps jump
  straight to the next due event.  Nothing reads the wall clock, so the
  entire replay — per-request token streams, TTFT/latency series, deadline
  expiries, admission decisions — is a deterministic function of
  ``(trace, cost model, SLO config)``.  This is the regime CI pins down.
* **wall** (:class:`~repro.traffic.clock.WallClock`, the default) — idle
  gaps become real sleeps and step costs are whatever the hardware does.
  Token streams are still deterministic (greedy decoding, seeded sampling);
  the latency columns are not.

:func:`replay_trace_async` replays the same trace against the
:class:`~repro.serving.server.AsyncServingEngine` front-end on the wall
clock (the background step thread owns stepping, so only arrivals are
paced), and :func:`replay_trace_router` does the same against a running
:class:`~repro.serving.router.Router`.  All three produce the same
:class:`ReplayReport` shape, so evalbench and the benches consume one
schema regardless of the serving front-end.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.evalbench.stats import summarize_series
from repro.models.generation import GenerationConfig
from repro.serving.engine import ServingEngine
from repro.traffic.admission import AdmissionController, AdmissionDecision
from repro.traffic.clock import SimulatedClock, WallClock
from repro.traffic.trace import Trace, TraceRequest


@dataclass
class StepCostModel:
    """Virtual time charged per engine step under a simulated clock.

    Attributes:
        step_seconds: Fixed overhead per ``engine.step()`` call.
        prefill_token_seconds: Cost per prompt token actually prefilled
            during the step (prefix-cache hits cost nothing, so reuse shows
            up as faster virtual TTFT — same shape as real serving).
        decode_token_seconds: Cost per token committed during the step.
    """

    step_seconds: float = 0.002
    prefill_token_seconds: float = 0.0005
    decode_token_seconds: float = 0.001

    def cost(self, prefill_tokens: int, decode_tokens: int) -> float:
        """Virtual seconds one step took given its token work."""
        return (
            self.step_seconds
            + self.prefill_token_seconds * prefill_tokens
            + self.decode_token_seconds * decode_tokens
        )


@dataclass
class RequestOutcome:
    """Final per-request record a replay produces.

    ``status`` is one of ``"finished"``, ``"cancelled"`` (the trace's
    scheduled cancel fired), ``"deadline"`` (the engine expired the
    request's deadline) or ``"shed"`` (the admission controller rejected
    it; such requests never reach the engine and have no token stream).
    """

    request_id: str
    tenant: str
    traffic_class: str
    status: str
    token_ids: List[int] = field(default_factory=list)
    submitted_at: Optional[float] = None
    ttft_seconds: Optional[float] = None
    latency_seconds: Optional[float] = None
    defer_count: int = 0

    def to_dict(self) -> Dict:
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "traffic_class": self.traffic_class,
            "status": self.status,
            "token_ids": list(self.token_ids),
            "submitted_at": self.submitted_at,
            "ttft_seconds": self.ttft_seconds,
            "latency_seconds": self.latency_seconds,
            "defer_count": self.defer_count,
        }


@dataclass
class ReplayReport:
    """Aggregate outcome of one trace replay.

    The latency columns use the shared
    :func:`~repro.evalbench.stats.summarize_series` shape
    (``count``/``mean``/``p50``/``p95``), keyed per traffic class.
    """

    outcomes: List[RequestOutcome]
    duration_seconds: float
    steps: int
    clock_mode: str
    admission: Optional[Dict] = None
    kv_pool: Dict = field(default_factory=dict)
    prefix_cache: Dict = field(default_factory=dict)

    @property
    def total_tokens(self) -> int:
        return sum(len(o.token_ids) for o in self.outcomes)

    def by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def class_summary(self, traffic_class: str) -> Dict:
        """TTFT/latency/shed summary for one traffic class."""
        members = [o for o in self.outcomes if o.traffic_class == traffic_class]
        served = [o for o in members if o.status != "shed"]
        return {
            "requests": len(members),
            "served": len(served),
            "shed": sum(1 for o in members if o.status == "shed"),
            "deferred_attempts": sum(o.defer_count for o in members),
            "tokens": sum(len(o.token_ids) for o in served),
            "ttft": summarize_series([o.ttft_seconds for o in served]),
            "latency": summarize_series([o.latency_seconds for o in served]),
        }

    def to_dict(self) -> Dict:
        """JSON-compatible report (deterministic under a simulated clock)."""
        classes = sorted({o.traffic_class for o in self.outcomes})
        duration = self.duration_seconds
        return {
            "schema": "repro.traffic.replay.v1",
            "clock_mode": self.clock_mode,
            "num_requests": len(self.outcomes),
            "duration_seconds": duration,
            "steps": self.steps,
            "total_tokens": self.total_tokens,
            "requests_per_second": len(self.outcomes) / duration if duration else 0.0,
            "tokens_per_second": self.total_tokens / duration if duration else 0.0,
            "by_status": self.by_status(),
            "classes": {c: self.class_summary(c) for c in classes},
            "admission": self.admission,
            "kv_pool": dict(self.kv_pool),
            "prefix_cache": dict(self.prefix_cache),
            "outcomes": [o.to_dict() for o in self.outcomes],
        }


@dataclass
class _Flight:
    """Replayer-side bookkeeping for one admitted request."""

    trace_request: TraceRequest
    submitted_at: float
    cancel_at: Optional[float] = None
    cancelled_by_replay: bool = False
    ttft_observed: bool = False
    defer_count: int = 0


def _request_config(request: TraceRequest) -> GenerationConfig:
    """Greedy decoding sized to the trace request's budget (deterministic)."""
    return GenerationConfig.greedy_config(max_new_tokens=request.max_new_tokens)


def replay_trace(
    engine: ServingEngine,
    trace: Trace,
    clock: Optional[object] = None,
    cost_model: Optional[StepCostModel] = None,
    admission: Optional[AdmissionController] = None,
    defer_retry_seconds: float = 0.05,
) -> ReplayReport:
    """Replay ``trace`` against a synchronous engine; returns the report.

    Args:
        engine: The serving engine to drive.  Under a
            :class:`SimulatedClock` it must have been constructed with the
            same clock object (``engine_for(..., clock=clock)``), or its
            timestamps would disagree with the replay's.
        trace: The trace to replay.
        clock: :class:`SimulatedClock` or :class:`WallClock` (default wall).
        cost_model: Virtual step costs (simulated clock only).
        admission: Optional SLO-aware gate consulted before every submit;
            deferred requests are retried every ``defer_retry_seconds``.
        defer_retry_seconds: Retry cadence for deferred requests.

    Raises:
        ValueError: Simulated clock that the engine does not share.
    """
    clock = clock or WallClock()
    simulated = isinstance(clock, SimulatedClock)
    if simulated and engine.core.clock is not clock:
        raise ValueError(
            "simulated replay requires the engine to share the replay clock; "
            "construct it with engine_for(..., clock=clock)"
        )
    cost_model = cost_model or StepCostModel()

    pending: List[TraceRequest] = sorted(trace.requests, key=lambda r: (r.arrival_seconds, r.request_id))
    deferred: List[tuple] = []  # (retry_at, TraceRequest, defer_count)
    flights: Dict[str, _Flight] = {}
    outcomes: Dict[str, RequestOutcome] = {}
    decode_tokens_step = [0]
    steps = 0
    start = clock()

    def submit_one(request: TraceRequest, defer_count: int) -> None:
        """Consult admission, then submit / defer / shed one request."""
        now = clock()
        if admission is not None:
            decision = admission.decide(
                request.tenant, request.traffic_class, request.max_new_tokens, now
            )
            if decision is AdmissionDecision.SHED:
                outcomes[request.request_id] = RequestOutcome(
                    request_id=request.request_id,
                    tenant=request.tenant,
                    traffic_class=request.traffic_class,
                    status="shed",
                    defer_count=defer_count,
                )
                return
            if decision is AdmissionDecision.DEFER:
                deferred.append((now + defer_retry_seconds, request, defer_count + 1))
                return
        engine.submit(
            engine.tokenizer.encode(request.prompt, add_bos=True),
            config=_request_config(request),
            request_id=request.request_id,
            priority=request.priority,
            deadline=request.deadline_seconds,
        )
        flight = _Flight(
            trace_request=request,
            submitted_at=now,
            cancel_at=(now + request.cancel_after) if request.cancel_after is not None else None,
            defer_count=defer_count,
        )
        flights[request.request_id] = flight
        engine.attach_listeners(
            request.request_id,
            on_commit=lambda burst: decode_tokens_step.__setitem__(
                0, decode_tokens_step[0] + len(burst)
            ),
        )

    def release_due() -> None:
        """Submit every pending arrival and deferred retry that is due."""
        now = clock()
        while pending and pending[0].arrival_seconds <= now - start + 1e-12:
            submit_one(pending.pop(0), 0)
        due = [d for d in deferred if d[0] <= now + 1e-12]
        if due:
            deferred[:] = [d for d in deferred if d[0] > now + 1e-12]
            # Retry in original trace order so recovery cannot starve an
            # early request behind later arrivals.
            for _, request, count in sorted(due, key=lambda d: d[1].request_id):
                submit_one(request, count)

    def cancel_due() -> None:
        now = clock()
        for rid, flight in flights.items():
            if (
                flight.cancel_at is not None
                and not flight.cancelled_by_replay
                and flight.cancel_at <= now + 1e-12
            ):
                flight.cancelled_by_replay = True
                engine.cancel(rid)

    def observe_ttfts() -> None:
        """Feed newly-first-tokened interactive TTFTs to the controller."""
        if admission is None:
            return
        now = clock()
        for rid, flight in flights.items():
            if flight.ttft_observed or flight.trace_request.traffic_class != "interactive":
                continue
            ttft = engine.stream_metrics(rid)["ttft_seconds"]
            if ttft is not None:
                flight.ttft_observed = True
                admission.observe_ttft(ttft, now)

    def next_event_time() -> Optional[float]:
        candidates = []
        if pending:
            candidates.append(start + pending[0].arrival_seconds)
        candidates.extend(d[0] for d in deferred)
        for flight in flights.values():
            if flight.cancel_at is not None and not flight.cancelled_by_replay:
                candidates.append(flight.cancel_at)
        return min(candidates) if candidates else None

    while pending or deferred or engine.has_work:
        release_due()
        cancel_due()
        if engine.has_work:
            decode_tokens_step[0] = 0
            prefilled_before = engine.tokens_prefilled_total
            engine.step()
            steps += 1
            if simulated:
                clock.advance(
                    cost_model.cost(
                        engine.tokens_prefilled_total - prefilled_before,
                        decode_tokens_step[0],
                    )
                )
            observe_ttfts()
        else:
            target = next_event_time()
            if target is None:
                break
            if simulated:
                clock.advance_to(target)
            else:
                clock.sleep(max(0.0, target - clock()))

    duration = clock() - start
    ordered: List[RequestOutcome] = []
    for request in trace.requests:
        rid = request.request_id
        if rid in outcomes:  # shed
            ordered.append(outcomes[rid])
            continue
        flight = flights[rid]
        result = engine.result(rid)
        metrics = engine.stream_metrics(rid)
        if not result.cancelled:
            status = "finished"
        elif flight.cancelled_by_replay:
            status = "cancelled"
        else:
            status = "deadline"
        ordered.append(
            RequestOutcome(
                request_id=rid,
                tenant=request.tenant,
                traffic_class=request.traffic_class,
                status=status,
                token_ids=list(result.token_ids),
                submitted_at=flight.submitted_at - start,
                ttft_seconds=metrics["ttft_seconds"],
                latency_seconds=engine.scheduler_latency(rid),
                defer_count=flight.defer_count,
            )
        )
    return ReplayReport(
        outcomes=ordered,
        duration_seconds=duration,
        steps=steps,
        clock_mode="simulated" if simulated else "wall",
        admission=admission.snapshot(clock()) if admission is not None else None,
        kv_pool=engine.kv_pool_stats(),
        prefix_cache=engine.prefix_cache_stats(),
    )


async def replay_trace_async(server, trace: Trace) -> ReplayReport:
    """Replay ``trace`` against an :class:`AsyncServingEngine` (wall clock).

    The server's background step thread owns stepping, so the replay only
    paces arrivals with real sleeps, issues scheduled cancellations, and
    awaits every handle.  Latency columns are wall-clock (non-deterministic);
    token streams remain deterministic.
    """
    from repro.serving.server import RequestCancelled, RequestDeadlineExceeded

    loop = asyncio.get_running_loop()
    start = loop.time()
    engine = server.engine
    outcomes: List[RequestOutcome] = []

    async def run_one(request: TraceRequest) -> RequestOutcome:
        delay = start + request.arrival_seconds - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        submitted = loop.time() - start
        handle = await server.submit(
            engine.tokenizer.encode(request.prompt, add_bos=True),
            config=_request_config(request),
            request_id=request.request_id,
            priority=request.priority,
            deadline=request.deadline_seconds,
        )
        cancel_task = None
        if request.cancel_after is not None:
            async def cancel_later() -> None:
                await asyncio.sleep(request.cancel_after)
                await handle.cancel_async()
            cancel_task = asyncio.ensure_future(cancel_later())
        status = "finished"
        tokens: List[int] = []
        try:
            result = await handle.result()
            tokens = list(result.token_ids)
        except RequestDeadlineExceeded as exc:
            status, tokens = "deadline", list(exc.partial)
        except RequestCancelled as exc:
            status, tokens = "cancelled", list(exc.partial)
        finally:
            if cancel_task is not None:
                cancel_task.cancel()
        metrics = engine.stream_metrics(request.request_id)
        return RequestOutcome(
            request_id=request.request_id,
            tenant=request.tenant,
            traffic_class=request.traffic_class,
            status=status,
            token_ids=tokens,
            submitted_at=submitted,
            ttft_seconds=metrics["ttft_seconds"],
            latency_seconds=engine.scheduler_latency(request.request_id),
        )

    outcomes = list(await asyncio.gather(*(run_one(r) for r in trace.requests)))
    return ReplayReport(
        outcomes=outcomes,
        duration_seconds=loop.time() - start,
        steps=0,
        clock_mode="wall",
        kv_pool=engine.kv_pool_stats(),
        prefix_cache=engine.prefix_cache_stats(),
    )


def replay_trace_router(router, trace: Trace, tokenizer) -> ReplayReport:
    """Replay ``trace`` against a running :class:`Router` (wall clock).

    Arrivals are paced with real sleeps relative to trace start; the
    router's workers step autonomously.  Scheduled cancellations are issued
    from the pacing loop; results are collected with ``drain``.  The router
    serves token ids, so the caller supplies the ``tokenizer`` its workers
    were built with.
    """
    wall = WallClock()
    start = wall()
    submitted_at: Dict[str, float] = {}
    cancel_at: List[tuple] = []
    for request in trace.requests:
        wall.sleep(start + request.arrival_seconds - wall())
        router.submit(
            tokenizer.encode(request.prompt, add_bos=True),
            config=_request_config(request),
            request_id=request.request_id,
            priority=request.priority,
            deadline=request.deadline_seconds,
        )
        submitted_at[request.request_id] = wall() - start
        if request.cancel_after is not None:
            cancel_at.append((wall() + request.cancel_after, request.request_id))
        for due, rid in [c for c in cancel_at if c[0] <= wall()]:
            router.cancel(rid)
            cancel_at.remove((due, rid))
        router.poll()
    for due, rid in sorted(cancel_at):
        wall.sleep(due - wall())
        router.cancel(rid)
    results = router.drain(timeout=120.0)
    outcomes = []
    for request in trace.requests:
        rid = request.request_id
        result = results.get(rid)
        record = router.request_record(rid)
        if result is not None and not result.cancelled:
            status = "finished"
        elif request.cancel_after is not None:
            status = "cancelled"
        else:
            status = "deadline" if request.deadline_seconds is not None else "cancelled"
        metrics = router.stream_metrics(rid) or {}
        outcomes.append(
            RequestOutcome(
                request_id=rid,
                tenant=request.tenant,
                traffic_class=request.traffic_class,
                status=status,
                token_ids=list(record.tokens),
                submitted_at=submitted_at[rid],
                ttft_seconds=metrics.get("ttft_seconds"),
                latency_seconds=None,
            )
        )
    return ReplayReport(
        outcomes=outcomes,
        duration_seconds=wall() - start,
        steps=0,
        clock_mode="wall",
        kv_pool=router.kv_pool_stats().get("aggregate", {}),
        prefix_cache=router.prefix_cache_stats().get("aggregate", {}),
    )


__all__ = [
    "StepCostModel",
    "RequestOutcome",
    "ReplayReport",
    "replay_trace",
    "replay_trace_async",
    "replay_trace_router",
]
