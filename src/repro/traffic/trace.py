"""Seeded synthetic traffic traces: generation, serialization, replay input.

A *trace* is an ordered list of :class:`TraceRequest` events — each with an
arrival time, tenant, traffic class, prompt, decoding budget and optional
deadline or mid-flight cancellation — plus the config that generated it.
Traces are what the replayer (:mod:`repro.traffic.replay`) feeds to a
serving engine, and what CI pins down for reproducibility: the same
:class:`TraceConfig` always produces the same trace, and ``to_json`` emits
canonical bytes so two runs can be compared with ``==`` on strings.

Generation models the traffic mix the serving stack cares about:

* **arrivals** — Poisson (exponential inter-arrival gaps) or *bursty*
  (Poisson gaps with periodic burst windows whose rate is multiplied by
  ``burst_factor``), scaled to ``requests_per_second``;
* **tenants** — requests are assigned to ``num_tenants`` tenants; tenants in
  the same *preamble group* share a synthetic prompt preamble so replay
  exercises the cross-request prefix cache;
* **classes** — ``"interactive"`` (latency-sensitive, mapped to high
  scheduler priority) vs ``"bulk"`` (batch traffic, the class the admission
  controller is allowed to defer or shed);
* **churn** — a seeded fraction of requests carries a deadline
  (``deadline_seconds``) or a scheduled cancellation (``cancel_after``
  seconds after submission), so replay covers the engine's expiry and
  cancel paths.

Everything derives from one ``numpy`` Generator seeded by
``TraceConfig.seed`` — no wall-clock or global-RNG input anywhere.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

import numpy as np

#: Traffic classes a trace request may carry.
TRAFFIC_CLASSES = ("interactive", "bulk")

#: Scheduler priority assigned per class on replay (higher = sooner).
CLASS_PRIORITY = {"interactive": 10, "bulk": 0}


@dataclass
class TraceRequest:
    """One request event in a trace.

    Attributes:
        request_id: Stable id, unique within the trace (``"r0007"``-style).
        arrival_seconds: Submission time relative to trace start.
        tenant: Tenant id string (``"tenant-3"``).
        traffic_class: ``"interactive"`` or ``"bulk"``.
        prompt: Prompt text (tenant-group preamble + unique tail).
        max_new_tokens: Decode budget for the request.
        deadline_seconds: Optional per-request deadline (relative to
            submission) enforced by the engine's expiry path.
        cancel_after: Optional delay (relative to submission) after which the
            replayer cancels the request mid-flight.
    """

    request_id: str
    arrival_seconds: float
    tenant: str
    traffic_class: str
    prompt: str
    max_new_tokens: int
    deadline_seconds: Optional[float] = None
    cancel_after: Optional[float] = None

    @property
    def priority(self) -> int:
        """Scheduler priority implied by the traffic class."""
        return CLASS_PRIORITY[self.traffic_class]


@dataclass
class TraceConfig:
    """Knobs for :func:`generate_trace`.

    Attributes:
        num_requests: Number of request events to emit.
        seed: RNG seed — same seed, same trace, byte-identical JSON.
        requests_per_second: Mean arrival rate (Poisson intensity).
        arrival_process: ``"poisson"`` or ``"bursty"``.
        burst_factor: Rate multiplier inside burst windows (bursty only).
        burst_period_seconds: Burst cycle length (bursty only).
        burst_duty: Fraction of each cycle spent bursting (bursty only).
        num_tenants: Tenant population size.
        preamble_groups: Number of shared-preamble groups tenants are
            partitioned into (1 = everyone shares one preamble; equal to
            ``num_tenants`` = no sharing).
        preamble_sentences: Length of each group's shared preamble, in
            synthetic sentences.
        interactive_fraction: Probability a request is interactive.
        prompt_sentence_choices: Unique-tail length mix (sentences),
            sampled uniformly.
        max_new_token_choices: Decode-budget mix, sampled uniformly.
        deadline_fraction: Probability a request carries a deadline.
        deadline_seconds_range: ``(lo, hi)`` uniform range for deadlines.
        cancel_fraction: Probability a request gets a scheduled cancel.
        cancel_after_range: ``(lo, hi)`` uniform range for cancel delays.
    """

    num_requests: int = 64
    seed: int = 0
    requests_per_second: float = 8.0
    arrival_process: str = "poisson"
    burst_factor: float = 4.0
    burst_period_seconds: float = 4.0
    burst_duty: float = 0.25
    num_tenants: int = 4
    preamble_groups: int = 2
    preamble_sentences: int = 3
    interactive_fraction: float = 0.5
    prompt_sentence_choices: tuple = (1, 2, 4)
    max_new_token_choices: tuple = (8, 16, 32)
    deadline_fraction: float = 0.0
    deadline_seconds_range: tuple = (0.5, 2.0)
    cancel_fraction: float = 0.0
    cancel_after_range: tuple = (0.05, 0.5)

    def validate(self) -> None:
        """Raise ``ValueError`` on out-of-range knobs."""
        if self.num_requests <= 0:
            raise ValueError("num_requests must be positive")
        if self.requests_per_second <= 0:
            raise ValueError("requests_per_second must be positive")
        if self.arrival_process not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival_process {self.arrival_process!r}")
        if not 0 < self.preamble_groups <= self.num_tenants:
            raise ValueError("preamble_groups must be in [1, num_tenants]")
        if not 0.0 <= self.interactive_fraction <= 1.0:
            raise ValueError("interactive_fraction must be in [0, 1]")
        if not 0.0 <= self.deadline_fraction <= 1.0:
            raise ValueError("deadline_fraction must be in [0, 1]")
        if not 0.0 <= self.cancel_fraction <= 1.0:
            raise ValueError("cancel_fraction must be in [0, 1]")
        if not 0.0 < self.burst_duty <= 1.0:
            raise ValueError("burst_duty must be in (0, 1]")


@dataclass
class Trace:
    """A generated trace: the request events plus their generating config."""

    config: TraceConfig
    requests: List[TraceRequest] = field(default_factory=list)

    @property
    def duration_seconds(self) -> float:
        """Arrival time of the last request (0.0 for an empty trace)."""
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_seconds

    def tenants(self) -> List[str]:
        """Sorted distinct tenant ids appearing in the trace."""
        return sorted({r.tenant for r in self.requests})

    # ------------------------------------------------------------------ #
    # Serialization — canonical, byte-stable
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict:
        """Plain-dict form (JSON-compatible scalars only)."""
        config = asdict(self.config)
        # Tuples serialize as lists; normalise here so to_dict() == the
        # parse of to_json() without a special-case comparison.
        for key, value in config.items():
            if isinstance(value, tuple):
                config[key] = list(value)
        return {
            "schema": "repro.traffic.trace.v1",
            "config": config,
            "requests": [
                {k: v for k, v in asdict(r).items() if v is not None}
                for r in self.requests
            ],
        }

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, fixed separators — byte-stable."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, payload: Dict) -> "Trace":
        """Inverse of :meth:`to_dict`.

        Raises:
            ValueError: Unknown schema tag.
        """
        schema = payload.get("schema")
        if schema != "repro.traffic.trace.v1":
            raise ValueError(f"unknown trace schema {schema!r}")
        config_dict = dict(payload["config"])
        for key in ("prompt_sentence_choices", "max_new_token_choices",
                    "deadline_seconds_range", "cancel_after_range"):
            if key in config_dict:
                config_dict[key] = tuple(config_dict[key])
        config = TraceConfig(**config_dict)
        requests = [TraceRequest(**r) for r in payload["requests"]]
        return cls(config=config, requests=requests)

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the canonical JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


# ---------------------------------------------------------------------- #
# Generation
# ---------------------------------------------------------------------- #

_SUBJECTS = ("the counter", "the fifo", "the alu", "the shifter", "the decoder",
             "the arbiter", "the fsm", "the register file")
_VERBS = ("updates", "resets", "shifts", "latches", "compares", "accumulates")
_OBJECTS = ("on the rising edge", "when enable is high", "after the stall",
            "under backpressure", "in the next cycle", "on overflow")


def _sentence(rng: np.random.Generator) -> str:
    """One synthetic prompt sentence drawn from a tiny fixed vocabulary."""
    return " ".join([
        str(rng.choice(_SUBJECTS)),
        str(rng.choice(_VERBS)),
        str(rng.choice(_OBJECTS)),
    ])


def _arrival_times(config: TraceConfig, rng: np.random.Generator) -> List[float]:
    """Cumulative arrival times for the configured arrival process."""
    times: List[float] = []
    now = 0.0
    base_rate = config.requests_per_second
    for _ in range(config.num_requests):
        rate = base_rate
        if config.arrival_process == "bursty":
            # Burst windows occupy the first `burst_duty` of each period;
            # inside them arrivals come `burst_factor`x faster.
            phase = (now % config.burst_period_seconds) / config.burst_period_seconds
            if phase < config.burst_duty:
                rate = base_rate * config.burst_factor
        gap = float(rng.exponential(1.0 / rate))
        now += gap
        times.append(now)
    return times


def generate_trace(config: Optional[TraceConfig] = None) -> Trace:
    """Generate a deterministic synthetic trace from ``config``.

    All randomness flows through one generator seeded by ``config.seed``:
    calling this twice with equal configs yields traces whose
    :meth:`Trace.to_json` strings are identical.

    Returns:
        The generated :class:`Trace` (requests sorted by arrival time).
    """
    config = config or TraceConfig()
    config.validate()
    rng = np.random.default_rng(config.seed)

    # Shared preambles: tenants are partitioned round-robin into groups and
    # each group gets one fixed preamble, so same-group requests share a
    # prompt prefix the serving stack's prefix cache can exploit.
    preambles = [
        ". ".join(_sentence(rng) for _ in range(config.preamble_sentences)) + ". "
        for _ in range(config.preamble_groups)
    ]
    tenant_group = {
        f"tenant-{t}": t % config.preamble_groups for t in range(config.num_tenants)
    }

    arrivals = _arrival_times(config, rng)
    requests: List[TraceRequest] = []
    for i, arrival in enumerate(arrivals):
        tenant = f"tenant-{int(rng.integers(config.num_tenants))}"
        traffic_class = (
            "interactive" if rng.random() < config.interactive_fraction else "bulk"
        )
        num_sentences = int(rng.choice(np.asarray(config.prompt_sentence_choices)))
        tail = ". ".join(_sentence(rng) for _ in range(num_sentences)) + "."
        deadline = None
        if rng.random() < config.deadline_fraction:
            lo, hi = config.deadline_seconds_range
            deadline = round(float(rng.uniform(lo, hi)), 6)
        cancel_after = None
        if rng.random() < config.cancel_fraction:
            lo, hi = config.cancel_after_range
            cancel_after = round(float(rng.uniform(lo, hi)), 6)
        requests.append(
            TraceRequest(
                request_id=f"r{i:04d}",
                arrival_seconds=round(arrival, 6),
                tenant=tenant,
                traffic_class=traffic_class,
                prompt=preambles[tenant_group[tenant]] + tail,
                max_new_tokens=int(rng.choice(np.asarray(config.max_new_token_choices))),
                deadline_seconds=deadline,
                cancel_after=cancel_after,
            )
        )
    return Trace(config=config, requests=requests)


__all__ = [
    "TRAFFIC_CLASSES",
    "CLASS_PRIORITY",
    "TraceRequest",
    "TraceConfig",
    "Trace",
    "generate_trace",
]
