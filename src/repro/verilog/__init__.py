"""Verilog language substrate.

This subpackage is the reproduction's substitute for the Stagira Verilog parser
used in the paper.  It provides:

* a lexer (:mod:`repro.verilog.lexer`) producing a token stream,
* a recursive-descent parser (:mod:`repro.verilog.parser`) producing a real AST,
* a syntax-check convenience API (:mod:`repro.verilog.syntax`),
* extraction of *syntactically significant tokens* from the AST
  (:mod:`repro.verilog.significant`), and
* code segmentation with ``[FRAG]`` markers (:mod:`repro.verilog.fragments`),
  which is the input to the paper's syntax-enriched label construction.
"""

from repro.verilog.lexer import Lexer, Token, TokenKind, LexerError, tokenize
from repro.verilog.parser import Parser, ParseError, parse_source, parse_module
from repro.verilog.syntax import SyntaxCheckResult, check_syntax
from repro.verilog.significant import (
    EXTRA_KEYWORDS,
    extract_ast_keywords,
    extract_significant_tokens,
)
from repro.verilog.fragments import (
    FRAG,
    insert_frag_markers,
    segment_code,
    strip_frag_markers,
    is_complete_fragment,
)

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "LexerError",
    "tokenize",
    "Parser",
    "ParseError",
    "parse_source",
    "parse_module",
    "SyntaxCheckResult",
    "check_syntax",
    "EXTRA_KEYWORDS",
    "extract_ast_keywords",
    "extract_significant_tokens",
    "FRAG",
    "insert_frag_markers",
    "segment_code",
    "strip_frag_markers",
    "is_complete_fragment",
]
