"""AST node definitions for the Verilog parser.

The node hierarchy mirrors the structure the paper relies on when extracting
*syntactically significant tokens*: module definitions, port/net declarations,
parameters, continuous assignments, procedural blocks, statements and
expressions.  Every node supports :meth:`Node.children` and :meth:`Node.walk`
so client code (significant-token extraction, the simulator elaborator) can
traverse the tree generically.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Iterator, List, Optional, Tuple


@dataclass
class Node:
    """Base class for every AST node."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes."""
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expression(Node):
    """Base class for expression nodes."""


@dataclass
class Identifier(Expression):
    """A reference to a named net, variable, parameter or instance."""

    name: str


@dataclass
class Number(Expression):
    """A numeric literal, kept in source form plus a parsed interpretation."""

    text: str
    width: Optional[int] = None
    base: str = "d"
    value_text: str = ""
    signed: bool = False


@dataclass
class StringLiteral(Expression):
    """A string literal (used by ``$display`` and friends)."""

    text: str


@dataclass
class UnaryOp(Expression):
    """A unary operator applied to an operand (including reductions)."""

    op: str
    operand: Expression


@dataclass
class BinaryOp(Expression):
    """A binary operator applied to two operands."""

    op: str
    left: Expression
    right: Expression


@dataclass
class Conditional(Expression):
    """The ternary ``cond ? a : b`` operator."""

    condition: Expression
    if_true: Expression
    if_false: Expression


@dataclass
class Concatenation(Expression):
    """``{a, b, c}``."""

    parts: List[Expression] = field(default_factory=list)


@dataclass
class Replication(Expression):
    """``{N{expr}}``."""

    count: Expression
    value: Concatenation


@dataclass
class BitSelect(Expression):
    """``sig[idx]``."""

    target: Expression
    index: Expression


@dataclass
class PartSelect(Expression):
    """``sig[msb:lsb]`` (or indexed part-select with ``+:``/``-:``)."""

    target: Expression
    msb: Expression
    lsb: Expression
    mode: str = ":"


@dataclass
class FunctionCall(Expression):
    """A call of a user function or system function."""

    name: str
    args: List[Expression] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Range(Node):
    """A packed range ``[msb:lsb]``."""

    msb: Expression
    lsb: Expression


@dataclass
class Port(Node):
    """A port in the module header (possibly with direction/type inline)."""

    name: str
    direction: Optional[str] = None
    net_type: Optional[str] = None
    range: Optional[Range] = None
    signed: bool = False


@dataclass
class PortDeclaration(Node):
    """A standalone ``input``/``output``/``inout`` declaration."""

    direction: str
    net_type: Optional[str]
    range: Optional[Range]
    names: List[str] = field(default_factory=list)
    signed: bool = False


@dataclass
class NetDeclaration(Node):
    """A ``wire``/``reg``/``integer`` declaration with optional initialisers."""

    net_type: str
    range: Optional[Range]
    names: List[str] = field(default_factory=list)
    initializers: List[Optional[Expression]] = field(default_factory=list)
    array_ranges: List[Optional[Range]] = field(default_factory=list)
    signed: bool = False


@dataclass
class ParameterDeclaration(Node):
    """A ``parameter``/``localparam`` declaration."""

    kind: str
    names: List[str] = field(default_factory=list)
    values: List[Expression] = field(default_factory=list)
    range: Optional[Range] = None


@dataclass
class GenvarDeclaration(Node):
    """A ``genvar`` declaration."""

    names: List[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Statement(Node):
    """Base class for procedural statements."""


@dataclass
class Assignment(Statement):
    """A blocking (``=``) or non-blocking (``<=``) procedural assignment."""

    target: Expression
    value: Expression
    blocking: bool = True
    delay: Optional[Expression] = None


@dataclass
class IfStatement(Statement):
    """``if (cond) ... else ...``."""

    condition: Expression
    then_body: Statement
    else_body: Optional[Statement] = None


@dataclass
class CaseItem(Node):
    """One arm of a case statement."""

    patterns: List[Expression] = field(default_factory=list)
    body: Optional[Statement] = None
    is_default: bool = False


@dataclass
class CaseStatement(Statement):
    """``case``/``casex``/``casez``."""

    kind: str
    subject: Expression
    items: List[CaseItem] = field(default_factory=list)


@dataclass
class Block(Statement):
    """A ``begin ... end`` block, possibly named."""

    statements: List[Statement] = field(default_factory=list)
    name: Optional[str] = None


@dataclass
class ForStatement(Statement):
    """``for (init; cond; step) body``."""

    init: Assignment
    condition: Expression
    step: Assignment
    body: Statement


@dataclass
class WhileStatement(Statement):
    """``while (cond) body``."""

    condition: Expression
    body: Statement


@dataclass
class RepeatStatement(Statement):
    """``repeat (count) body``."""

    count: Expression
    body: Statement


@dataclass
class ForeverStatement(Statement):
    """``forever body``."""

    body: Statement


@dataclass
class DelayStatement(Statement):
    """``#delay body`` or a bare ``#delay;``."""

    delay: Expression
    body: Optional[Statement] = None


@dataclass
class EventControl(Node):
    """A single item of a sensitivity list."""

    edge: Optional[str]
    signal: Optional[Expression]


@dataclass
class EventControlStatement(Statement):
    """``@(sensitivity) body`` or ``@*``."""

    controls: List[EventControl] = field(default_factory=list)
    body: Optional[Statement] = None
    is_star: bool = False


@dataclass
class WaitStatement(Statement):
    """``wait (expr) body``."""

    condition: Expression
    body: Optional[Statement] = None


@dataclass
class SystemTaskCall(Statement):
    """A call of ``$display``, ``$finish``, ``$monitor`` and friends."""

    name: str
    args: List[Expression] = field(default_factory=list)


@dataclass
class TaskCallStatement(Statement):
    """A call of a user-defined task as a statement."""

    name: str
    args: List[Expression] = field(default_factory=list)


@dataclass
class DisableStatement(Statement):
    """``disable block_name;``"""

    name: str


@dataclass
class NullStatement(Statement):
    """A bare ``;``."""


# ---------------------------------------------------------------------------
# Module-level items
# ---------------------------------------------------------------------------


@dataclass
class ContinuousAssign(Node):
    """``assign lhs = rhs;`` (possibly several in one statement)."""

    assignments: List[Tuple[Expression, Expression]] = field(default_factory=list)
    delay: Optional[Expression] = None

    def children(self) -> Iterator[Node]:
        for lhs, rhs in self.assignments:
            yield lhs
            yield rhs


@dataclass
class AlwaysBlock(Node):
    """An ``always`` process."""

    body: Statement


@dataclass
class InitialBlock(Node):
    """An ``initial`` process."""

    body: Statement


@dataclass
class PortConnection(Node):
    """A named or positional port connection of a module instance."""

    name: Optional[str]
    expr: Optional[Expression]


@dataclass
class ModuleInstance(Node):
    """One instance of a submodule."""

    module_name: str
    instance_name: str
    connections: List[PortConnection] = field(default_factory=list)
    parameter_overrides: List[PortConnection] = field(default_factory=list)


@dataclass
class GateInstance(Node):
    """A primitive gate instance (and/or/not/...)."""

    gate_type: str
    instance_name: Optional[str]
    terminals: List[Expression] = field(default_factory=list)


@dataclass
class FunctionDeclaration(Node):
    """A ``function ... endfunction`` definition."""

    name: str
    range: Optional[Range]
    items: List[Node] = field(default_factory=list)
    body: List[Statement] = field(default_factory=list)


@dataclass
class TaskDeclaration(Node):
    """A ``task ... endtask`` definition."""

    name: str
    items: List[Node] = field(default_factory=list)
    body: List[Statement] = field(default_factory=list)


@dataclass
class GenerateBlock(Node):
    """A ``generate ... endgenerate`` region (kept mostly opaque)."""

    items: List[Node] = field(default_factory=list)


@dataclass
class ModuleDef(Node):
    """A complete ``module ... endmodule`` definition."""

    name: str
    ports: List[Port] = field(default_factory=list)
    items: List[Node] = field(default_factory=list)
    parameters: List[ParameterDeclaration] = field(default_factory=list)


@dataclass
class SourceFile(Node):
    """A parsed source file containing one or more modules."""

    modules: List[ModuleDef] = field(default_factory=list)

    def module(self, name: str) -> ModuleDef:
        """Return the module named ``name``.

        Raises:
            KeyError: if no module with that name exists.
        """
        for mod in self.modules:
            if mod.name == name:
                return mod
        raise KeyError(name)
