"""Code segmentation into syntactically meaningful fragments (paper Fig. 3C).

After the significant tokens have been identified, the paper uses regular
expressions to segment the code into fragments that preserve syntax integrity,
inserting a special ``[FRAG]`` marker at every segmentation point.  The
``[FRAG]``-annotated text is what the tokenizer sees and what the
syntax-enriched labels (:mod:`repro.core.labels`) are built from.

This module provides:

* :func:`segment_code` — split code into (fragment, is_significant) pieces;
* :func:`insert_frag_markers` — produce the ``[FRAG]``-annotated text;
* :func:`strip_frag_markers` — recover plain code from annotated text;
* :func:`is_complete_fragment` — the integrity predicate used by the decoder.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple

from repro.verilog.significant import extract_significant_tokens

#: The fragment-boundary marker inserted between meaningful code fragments.
FRAG = "[FRAG]"

#: Tokens that never need word boundaries (operators / punctuation).
_NON_WORD = re.compile(r"[^0-9A-Za-z_]")


def _build_pattern(significant_tokens: Sequence[str]) -> re.Pattern:
    """Build a regex that matches any significant token (longest first)."""
    ordered = sorted(set(significant_tokens), key=len, reverse=True)
    alternatives = []
    for token in ordered:
        escaped = re.escape(token)
        if _NON_WORD.search(token):
            alternatives.append(escaped)
        else:
            # Word-like tokens must match whole identifiers only, so that e.g.
            # the keyword ``reg`` does not split ``data_register``.
            alternatives.append(rf"(?<![0-9A-Za-z_$]){escaped}(?![0-9A-Za-z_$])")
    return re.compile("|".join(alternatives)) if alternatives else re.compile(r"(?!x)x")


def segment_code(
    source: str, significant_tokens: Optional[Sequence[str]] = None
) -> List[Tuple[str, bool]]:
    """Segment ``source`` around its significant tokens.

    Args:
        source: plain Verilog source text (no ``[FRAG]`` markers).
        significant_tokens: the significant-token set.  When omitted it is
            derived from ``source`` itself via
            :func:`repro.verilog.significant.extract_significant_tokens`.

    Returns:
        A list of ``(text, is_significant)`` pieces whose concatenation equals
        ``source``.  ``is_significant`` is True for pieces that are significant
        tokens and False for the glue (whitespace, brackets, the remainder).
    """
    if significant_tokens is None:
        significant_tokens = extract_significant_tokens(source)
    pattern = _build_pattern(significant_tokens)
    pieces: List[Tuple[str, bool]] = []
    cursor = 0
    for match in pattern.finditer(source):
        if match.start() > cursor:
            pieces.append((source[cursor : match.start()], False))
        pieces.append((match.group(0), True))
        cursor = match.end()
    if cursor < len(source):
        pieces.append((source[cursor:], False))
    return pieces


def insert_frag_markers(
    source: str, significant_tokens: Optional[Sequence[str]] = None
) -> str:
    """Insert ``[FRAG]`` markers around every significant token in ``source``.

    The result matches the paper's Fig. 3C format: each significant token is
    bracketed by ``[FRAG]`` markers, and non-significant glue text is kept
    verbatim between them.  Consecutive markers are collapsed so that the
    annotated text never contains ``[FRAG][FRAG]`` runs longer than one marker
    per boundary.
    """
    pieces = segment_code(source, significant_tokens)
    out: List[str] = []

    def append_marker() -> None:
        if not out or not out[-1].endswith(FRAG):
            out.append(FRAG)

    for text, is_significant in pieces:
        if is_significant:
            append_marker()
            out.append(text)
            out.append(FRAG)
        else:
            out.append(text)
    return "".join(out)


def strip_frag_markers(annotated: str) -> str:
    """Remove every ``[FRAG]`` marker, recovering the plain source text."""
    return annotated.replace(FRAG, "")


def is_complete_fragment(annotated: str) -> bool:
    """Return True if ``annotated`` ends at a fragment boundary.

    A decoded prefix is *complete* (safe to stop at) when, after trailing
    whitespace is removed, it ends with a ``[FRAG]`` marker or is empty.  This
    is the predicate the speculative decoder's integrity check uses to decide
    how far an accepted token run may extend (paper Sec. III-B).
    """
    trimmed = annotated.rstrip()
    if not trimmed:
        return True
    return trimmed.endswith(FRAG)


def fragment_boundary_positions(annotated_tokens: Sequence[str]) -> List[int]:
    """Indices of ``[FRAG]`` markers in a tokenised annotated sequence.

    Args:
        annotated_tokens: sequence of string tokens (e.g. BPE pieces decoded
            back to strings) where the marker appears as its own token.

    Returns:
        The positions ``i`` with ``annotated_tokens[i] == FRAG``.
    """
    return [i for i, token in enumerate(annotated_tokens) if token == FRAG]
