"""Lexer for a practical subset of Verilog-2001.

The lexer converts Verilog source text into a stream of :class:`Token` objects.
It covers the constructs needed by the reproduction: module definitions,
declarations, procedural blocks, expressions, numeric literals in every base,
strings, system tasks, compiler directives (skipped), and both comment styles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional


class LexerError(ValueError):
    """Raised when the source text cannot be tokenized."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, col {column}: {message}")
        self.line = line
        self.column = column


class TokenKind(enum.Enum):
    """Categories of Verilog tokens."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    SYSTEM_IDENTIFIER = "system_identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    DIRECTIVE = "directive"
    EOF = "eof"


#: Reserved words recognised by the lexer.  This is the subset of Verilog-2001
#: keywords that appear in synthesizable RTL and simple testbenches.
KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "reg",
        "integer",
        "real",
        "time",
        "parameter",
        "localparam",
        "assign",
        "always",
        "initial",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "casex",
        "casez",
        "endcase",
        "default",
        "for",
        "while",
        "repeat",
        "forever",
        "posedge",
        "negedge",
        "or",
        "and",
        "not",
        "nand",
        "nor",
        "xor",
        "xnor",
        "buf",
        "function",
        "endfunction",
        "task",
        "endtask",
        "generate",
        "endgenerate",
        "genvar",
        "signed",
        "unsigned",
        "wait",
        "disable",
        "fork",
        "join",
        "supply0",
        "supply1",
        "tri",
    }
)

#: Multi-character operators, longest first so that maximal munch works.
MULTI_CHAR_OPERATORS = [
    "<<<",
    ">>>",
    "===",
    "!==",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "**",
    "~&",
    "~|",
    "~^",
    "^~",
    "+:",
    "-:",
    "->",
]

SINGLE_CHAR_OPERATORS = set("+-*/%<>!&|^~=?")

PUNCTUATION = set("()[]{};:,.#@")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: the token category.
        text: the exact source text of the token.
        line: 1-based line number where the token starts.
        column: 1-based column number where the token starts.
    """

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: Optional[str] = None) -> bool:
        """Return True if this token is a keyword (optionally a specific one)."""
        if self.kind is not TokenKind.KEYWORD:
            return False
        return word is None or self.text == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


class Lexer:
    """Streaming lexer over Verilog source text."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        if idx < len(self.source):
            return self.source[idx]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos : self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _lex_identifier(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        if self._peek() == "\\":
            # Escaped identifier: backslash up to whitespace.
            self._advance()
            while self.pos < len(self.source) and self._peek() not in " \t\r\n":
                self._advance()
            return Token(TokenKind.IDENTIFIER, self.source[start : self.pos], line, column)
        while self.pos < len(self.source) and (self._peek().isalnum() or self._peek() in "_$"):
            self._advance()
        text = self.source[start : self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENTIFIER
        return Token(kind, text, line, column)

    def _lex_system_identifier(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        self._advance()  # consume '$'
        while self.pos < len(self.source) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        return Token(TokenKind.SYSTEM_IDENTIFIER, self.source[start : self.pos], line, column)

    def _lex_directive(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        self._advance()  # consume '`'
        while self.pos < len(self.source) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        return Token(TokenKind.DIRECTIVE, self.source[start : self.pos], line, column)

    def _lex_number(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        # Optional size prefix (decimal digits, possibly with underscores).
        while self.pos < len(self.source) and (self._peek().isdigit() or self._peek() == "_"):
            self._advance()
        if self._peek() == "'":
            self._advance()
            if self._peek().lower() == "s":
                self._advance()
            base = self._peek().lower()
            # ``not base`` guards end-of-input: ``""`` is a substring of
            # ``"bodh"``, so the containment check alone would fall through
            # and crash on the dict lookup below.
            if not base or base not in "bodh":
                raise self._error(f"invalid number base {base!r}")
            self._advance()
            valid = {
                "b": "01xzXZ_?",
                "o": "01234567xzXZ_?",
                "d": "0123456789_",
                "h": "0123456789abcdefABCDEFxzXZ_?",
            }[base]
            if self._peek() not in valid:
                raise self._error("number literal missing digits")
            while self.pos < len(self.source) and self._peek() in valid:
                self._advance()
        else:
            # Plain decimal / real number.
            if self._peek() == "." and self._peek(1).isdigit():
                self._advance()
                while self.pos < len(self.source) and (self._peek().isdigit() or self._peek() == "_"):
                    self._advance()
            if self._peek() in "eE" and (self._peek(1).isdigit() or self._peek(1) in "+-"):
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self.pos < len(self.source) and self._peek().isdigit():
                    self._advance()
        return Token(TokenKind.NUMBER, self.source[start : self.pos], line, column)

    def _lex_string(self) -> Token:
        line, column = self.line, self.column
        start = self.pos
        self._advance()  # consume opening quote
        while self.pos < len(self.source) and self._peek() != '"':
            if self._peek() == "\\":
                self._advance()
            if self._peek() == "\n":
                raise self._error("unterminated string literal")
            self._advance()
        if self.pos >= len(self.source):
            raise self._error("unterminated string literal")
        self._advance()  # closing quote
        return Token(TokenKind.STRING, self.source[start : self.pos], line, column)

    def next_token(self) -> Token:
        """Return the next token, or an EOF token when the input is exhausted."""
        self._skip_whitespace_and_comments()
        if self.pos >= len(self.source):
            return Token(TokenKind.EOF, "", self.line, self.column)
        ch = self._peek()
        line, column = self.line, self.column

        if ch.isalpha() or ch == "_" or ch == "\\":
            return self._lex_identifier()
        if ch == "$":
            return self._lex_system_identifier()
        if ch == "`":
            return self._lex_directive()
        if ch.isdigit():
            return self._lex_number()
        if ch == "'" and self._peek(1).lower() in "bodhs":
            return self._lex_number()
        if ch == '"':
            return self._lex_string()

        for op in MULTI_CHAR_OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token(TokenKind.OPERATOR, op, line, column)
        if ch in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenKind.OPERATOR, ch, line, column)
        if ch in PUNCTUATION:
            self._advance()
            return Token(TokenKind.PUNCTUATION, ch, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def __iter__(self) -> Iterator[Token]:
        while True:
            token = self.next_token()
            yield token
            if token.kind is TokenKind.EOF:
                return


def tokenize(source: str, include_eof: bool = False) -> List[Token]:
    """Tokenize ``source`` and return the full list of tokens.

    Args:
        source: Verilog source text.
        include_eof: whether to append the trailing EOF token.

    Returns:
        The list of tokens in source order.
    """
    tokens = list(Lexer(source))
    if not include_eof and tokens and tokens[-1].kind is TokenKind.EOF:
        tokens.pop()
    return tokens
