"""Recursive-descent parser for a practical subset of Verilog-2001.

The parser builds the AST defined in :mod:`repro.verilog.ast_nodes`.  It is the
reproduction's stand-in for the Stagira parser used by the paper: it is used
both to *syntax-check* corpus/benchmark code and to extract the AST leaves that
become syntactically significant tokens.

Supported constructs include ANSI and non-ANSI module headers, wire/reg/integer
declarations with packed and unpacked ranges, parameters/localparams,
continuous assignments, always/initial blocks with full statement grammar
(if/case/for/while/repeat/forever/delays/event controls/system tasks),
module and primitive-gate instantiation, functions, tasks and simple generate
regions.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.verilog import ast_nodes as ast
from repro.verilog.lexer import Lexer, Token, TokenKind


class ParseError(ValueError):
    """Raised when the token stream does not match the grammar."""

    def __init__(self, message: str, token: Optional[Token] = None) -> None:
        location = ""
        if token is not None:
            location = f" at line {token.line}, col {token.column} (near {token.text!r})"
        super().__init__(message + location)
        self.token = token


_UNARY_OPS = {"+", "-", "!", "~", "&", "|", "^", "~&", "~|", "~^", "^~"}

# Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "~^": 4,
    "^~": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "<<<": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
    "**": 11,
}

_GATE_TYPES = {"and", "or", "not", "nand", "nor", "xor", "xnor", "buf"}

_NET_TYPES = {"wire", "reg", "integer", "real", "time", "tri", "supply0", "supply1", "genvar"}


class Parser:
    """Token-stream parser producing :class:`~repro.verilog.ast_nodes.SourceFile`."""

    def __init__(self, source: str) -> None:
        self.tokens: List[Token] = []
        lexer = Lexer(source)
        skip_line: Optional[int] = None
        while True:
            token = lexer.next_token()
            if skip_line is not None and token.kind is not TokenKind.EOF and token.line == skip_line:
                # Remaining payload of a line-oriented compiler directive
                # (`timescale 1ns/1ps etc.) is dropped, matching how the
                # paper's data pipeline treats directives.
                continue
            skip_line = None
            if token.kind is TokenKind.DIRECTIVE:
                if token.text in ("`timescale", "`define", "`include", "`default_nettype"):
                    skip_line = token.line
                continue
            self.tokens.append(token)
            if token.kind is TokenKind.EOF:
                break
        self.index = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _check(self, text: str) -> bool:
        return self._peek().text == text

    def _check_kind(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise ParseError(f"expected {text!r}", self._peek())
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.kind is not TokenKind.IDENTIFIER:
            raise ParseError("expected identifier", token)
        self._advance()
        return token.text

    # -- top level ----------------------------------------------------------

    def parse_source(self) -> ast.SourceFile:
        """Parse the full source file (one or more modules)."""
        modules: List[ast.ModuleDef] = []
        while not self._check_kind(TokenKind.EOF):
            if self._check("module"):
                modules.append(self.parse_module())
            else:
                raise ParseError("expected 'module'", self._peek())
        if not modules:
            raise ParseError("source contains no modules", self._peek())
        return ast.SourceFile(modules=modules)

    def parse_module(self) -> ast.ModuleDef:
        """Parse one ``module ... endmodule`` definition."""
        self._expect("module")
        name = self._expect_identifier()
        parameters: List[ast.ParameterDeclaration] = []
        ports: List[ast.Port] = []

        if self._accept("#"):
            self._expect("(")
            parameters.extend(self._parse_parameter_port_list())
            self._expect(")")
        if self._accept("("):
            ports = self._parse_port_list()
            self._expect(")")
        self._expect(";")

        items: List[ast.Node] = []
        while not self._check("endmodule"):
            if self._check_kind(TokenKind.EOF):
                raise ParseError("unexpected end of file inside module", self._peek())
            item = self._parse_module_item()
            if item is not None:
                if isinstance(item, list):
                    items.extend(item)
                else:
                    items.append(item)
        self._expect("endmodule")
        return ast.ModuleDef(name=name, ports=ports, items=items, parameters=parameters)

    def _parse_parameter_port_list(self) -> List[ast.ParameterDeclaration]:
        params: List[ast.ParameterDeclaration] = []
        while True:
            self._expect("parameter")
            rng = self._parse_optional_range()
            name = self._expect_identifier()
            self._expect("=")
            value = self.parse_expression()
            params.append(
                ast.ParameterDeclaration(kind="parameter", names=[name], values=[value], range=rng)
            )
            if not self._accept(","):
                break
        return params

    def _parse_port_list(self) -> List[ast.Port]:
        ports: List[ast.Port] = []
        if self._check(")"):
            return ports
        while True:
            direction = None
            net_type = None
            signed = False
            rng = None
            if self._peek().text in ("input", "output", "inout"):
                direction = self._advance().text
                if self._peek().text in ("wire", "reg"):
                    net_type = self._advance().text
                if self._accept("signed"):
                    signed = True
                rng = self._parse_optional_range()
            name = self._expect_identifier()
            ports.append(ast.Port(name=name, direction=direction, net_type=net_type, range=rng, signed=signed))
            if not self._accept(","):
                break
        return ports

    # -- module items -------------------------------------------------------

    def _parse_module_item(self):
        token = self._peek()
        text = token.text
        if text in ("input", "output", "inout"):
            return self._parse_port_declaration()
        if text in _NET_TYPES:
            if text == "genvar":
                return self._parse_genvar_declaration()
            return self._parse_net_declaration()
        if text in ("parameter", "localparam"):
            return self._parse_parameter_declaration()
        if text == "assign":
            return self._parse_continuous_assign()
        if text == "always":
            self._advance()
            body = self._parse_statement()
            return ast.AlwaysBlock(body=body)
        if text == "initial":
            self._advance()
            body = self._parse_statement()
            return ast.InitialBlock(body=body)
        if text == "function":
            return self._parse_function()
        if text == "task":
            return self._parse_task()
        if text == "generate":
            return self._parse_generate()
        if text in _GATE_TYPES:
            return self._parse_gate_instances()
        if token.kind is TokenKind.IDENTIFIER:
            return self._parse_module_instances()
        if text == ";":
            self._advance()
            return None
        raise ParseError("unexpected token in module body", token)

    def _parse_optional_range(self) -> Optional[ast.Range]:
        if self._check("["):
            self._advance()
            msb = self.parse_expression()
            self._expect(":")
            lsb = self.parse_expression()
            self._expect("]")
            return ast.Range(msb=msb, lsb=lsb)
        return None

    def _parse_port_declaration(self) -> ast.PortDeclaration:
        direction = self._advance().text
        net_type = None
        if self._peek().text in ("wire", "reg", "integer"):
            net_type = self._advance().text
        signed = self._accept("signed")
        rng = self._parse_optional_range()
        names = [self._expect_identifier()]
        while self._accept(","):
            # Non-ANSI declarations may list several names; stop if the next
            # token starts a new declaration keyword (defensive).
            names.append(self._expect_identifier())
        self._expect(";")
        return ast.PortDeclaration(direction=direction, net_type=net_type, range=rng, names=names, signed=signed)

    def _parse_net_declaration(self) -> ast.NetDeclaration:
        net_type = self._advance().text
        signed = self._accept("signed")
        rng = self._parse_optional_range()
        names: List[str] = []
        initializers: List[Optional[ast.Expression]] = []
        array_ranges: List[Optional[ast.Range]] = []
        while True:
            name = self._expect_identifier()
            arr = self._parse_optional_range()
            init = None
            if self._accept("="):
                init = self.parse_expression()
            names.append(name)
            initializers.append(init)
            array_ranges.append(arr)
            if not self._accept(","):
                break
        self._expect(";")
        return ast.NetDeclaration(
            net_type=net_type,
            range=rng,
            names=names,
            initializers=initializers,
            array_ranges=array_ranges,
            signed=signed,
        )

    def _parse_genvar_declaration(self) -> ast.GenvarDeclaration:
        self._expect("genvar")
        names = [self._expect_identifier()]
        while self._accept(","):
            names.append(self._expect_identifier())
        self._expect(";")
        return ast.GenvarDeclaration(names=names)

    def _parse_parameter_declaration(self) -> ast.ParameterDeclaration:
        kind = self._advance().text
        rng = self._parse_optional_range()
        names: List[str] = []
        values: List[ast.Expression] = []
        while True:
            name = self._expect_identifier()
            self._expect("=")
            value = self.parse_expression()
            names.append(name)
            values.append(value)
            if not self._accept(","):
                break
        self._expect(";")
        return ast.ParameterDeclaration(kind=kind, names=names, values=values, range=rng)

    def _parse_continuous_assign(self) -> ast.ContinuousAssign:
        self._expect("assign")
        delay = None
        if self._accept("#"):
            delay = self._parse_delay_value()
        assignments: List[Tuple[ast.Expression, ast.Expression]] = []
        while True:
            lhs = self._parse_lvalue()
            self._expect("=")
            rhs = self.parse_expression()
            assignments.append((lhs, rhs))
            if not self._accept(","):
                break
        self._expect(";")
        return ast.ContinuousAssign(assignments=assignments, delay=delay)

    def _parse_delay_value(self) -> ast.Expression:
        if self._accept("("):
            expr = self.parse_expression()
            self._expect(")")
            return expr
        return self._parse_primary()

    def _parse_function(self) -> ast.FunctionDeclaration:
        self._expect("function")
        self._accept("automatic")
        signed = self._accept("signed")
        rng = self._parse_optional_range()
        if self._check("integer"):
            self._advance()
        name = self._expect_identifier()
        items: List[ast.Node] = []
        body: List[ast.Statement] = []
        if self._accept("("):
            # ANSI-style function ports.
            while not self._check(")"):
                items.append(self._parse_function_port())
                if not self._accept(","):
                    break
            self._expect(")")
        self._expect(";")
        while not self._check("endfunction"):
            if self._peek().text in ("input", "output", "inout"):
                items.append(self._parse_port_declaration())
            elif self._peek().text in _NET_TYPES:
                items.append(self._parse_net_declaration())
            else:
                body.append(self._parse_statement())
        self._expect("endfunction")
        del signed  # recorded implicitly by the declaration subset we keep
        return ast.FunctionDeclaration(name=name, range=rng, items=items, body=body)

    def _parse_function_port(self) -> ast.PortDeclaration:
        direction = "input"
        if self._peek().text in ("input", "output", "inout"):
            direction = self._advance().text
        net_type = None
        if self._peek().text in ("wire", "reg", "integer"):
            net_type = self._advance().text
        signed = self._accept("signed")
        rng = self._parse_optional_range()
        names = [self._expect_identifier()]
        return ast.PortDeclaration(direction=direction, net_type=net_type, range=rng, names=names, signed=signed)

    def _parse_task(self) -> ast.TaskDeclaration:
        self._expect("task")
        self._accept("automatic")
        name = self._expect_identifier()
        items: List[ast.Node] = []
        body: List[ast.Statement] = []
        if self._accept("("):
            while not self._check(")"):
                items.append(self._parse_function_port())
                if not self._accept(","):
                    break
            self._expect(")")
        self._expect(";")
        while not self._check("endtask"):
            if self._peek().text in ("input", "output", "inout"):
                items.append(self._parse_port_declaration())
            elif self._peek().text in _NET_TYPES:
                items.append(self._parse_net_declaration())
            else:
                body.append(self._parse_statement())
        self._expect("endtask")
        return ast.TaskDeclaration(name=name, items=items, body=body)

    def _parse_generate(self) -> ast.GenerateBlock:
        self._expect("generate")
        items: List[ast.Node] = []
        depth = 1
        # Generate regions are kept as an opaque item list of parsed module
        # items where possible; unsupported constructs inside the region are
        # consumed token-wise so the surrounding module still parses.
        while depth > 0:
            if self._check_kind(TokenKind.EOF):
                raise ParseError("unexpected end of file inside generate", self._peek())
            if self._check("generate"):
                depth += 1
                self._advance()
                continue
            if self._check("endgenerate"):
                depth -= 1
                self._advance()
                continue
            try:
                item = self._parse_module_item()
            except ParseError:
                self._advance()
                continue
            if item is not None:
                if isinstance(item, list):
                    items.extend(item)
                else:
                    items.append(item)
        return ast.GenerateBlock(items=items)

    def _parse_gate_instances(self) -> List[ast.GateInstance]:
        gate_type = self._advance().text
        instances: List[ast.GateInstance] = []
        while True:
            instance_name = None
            if self._check_kind(TokenKind.IDENTIFIER):
                instance_name = self._advance().text
            self._expect("(")
            terminals = [self.parse_expression()]
            while self._accept(","):
                terminals.append(self.parse_expression())
            self._expect(")")
            instances.append(
                ast.GateInstance(gate_type=gate_type, instance_name=instance_name, terminals=terminals)
            )
            if not self._accept(","):
                break
        self._expect(";")
        return instances

    def _parse_module_instances(self) -> List[ast.ModuleInstance]:
        module_name = self._expect_identifier()
        parameter_overrides: List[ast.PortConnection] = []
        if self._accept("#"):
            self._expect("(")
            parameter_overrides = self._parse_connection_list()
            self._expect(")")
        instances: List[ast.ModuleInstance] = []
        while True:
            instance_name = self._expect_identifier()
            # Optional instance array range, ignored for elaboration purposes.
            self._parse_optional_range()
            self._expect("(")
            connections = self._parse_connection_list()
            self._expect(")")
            instances.append(
                ast.ModuleInstance(
                    module_name=module_name,
                    instance_name=instance_name,
                    connections=connections,
                    parameter_overrides=parameter_overrides,
                )
            )
            if not self._accept(","):
                break
        self._expect(";")
        return instances

    def _parse_connection_list(self) -> List[ast.PortConnection]:
        connections: List[ast.PortConnection] = []
        if self._check(")"):
            return connections
        while True:
            if self._accept("."):
                name = self._expect_identifier()
                self._expect("(")
                expr = None
                if not self._check(")"):
                    expr = self.parse_expression()
                self._expect(")")
                connections.append(ast.PortConnection(name=name, expr=expr))
            else:
                expr = None
                if not self._check(",") and not self._check(")"):
                    expr = self.parse_expression()
                connections.append(ast.PortConnection(name=None, expr=expr))
            if not self._accept(","):
                break
        return connections

    # -- statements ---------------------------------------------------------

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        text = token.text

        if text == "begin":
            return self._parse_block()
        if text == "if":
            return self._parse_if()
        if text in ("case", "casex", "casez"):
            return self._parse_case()
        if text == "for":
            return self._parse_for()
        if text == "while":
            return self._parse_while()
        if text == "repeat":
            return self._parse_repeat()
        if text == "forever":
            self._advance()
            return ast.ForeverStatement(body=self._parse_statement())
        if text == "wait":
            self._advance()
            self._expect("(")
            condition = self.parse_expression()
            self._expect(")")
            body = None
            if not self._accept(";"):
                body = self._parse_statement()
            return ast.WaitStatement(condition=condition, body=body)
        if text == "disable":
            self._advance()
            name = self._expect_identifier()
            self._expect(";")
            return ast.DisableStatement(name=name)
        if text == "#":
            self._advance()
            delay = self._parse_delay_value()
            if self._accept(";"):
                return ast.DelayStatement(delay=delay, body=None)
            return ast.DelayStatement(delay=delay, body=self._parse_statement())
        if text == "@":
            return self._parse_event_control()
        if token.kind is TokenKind.SYSTEM_IDENTIFIER:
            return self._parse_system_task()
        if text == ";":
            self._advance()
            return ast.NullStatement()
        if text == "->":
            # Named event trigger: treat as a null statement for our purposes.
            self._advance()
            self._expect_identifier()
            self._expect(";")
            return ast.NullStatement()
        return self._parse_assignment_or_task_call()

    def _parse_block(self) -> ast.Block:
        self._expect("begin")
        name = None
        if self._accept(":"):
            name = self._expect_identifier()
        statements: List[ast.Statement] = []
        declarations_allowed = True
        while not self._check("end"):
            if self._check_kind(TokenKind.EOF):
                raise ParseError("unexpected end of file inside begin/end block", self._peek())
            if declarations_allowed and self._peek().text in ("integer", "reg", "real", "time"):
                decl = self._parse_net_declaration()
                # Local declarations are modelled as statements wrapping nothing;
                # keep them as NullStatements carrying no simulation semantics
                # beyond name introduction, which the simulator handles at
                # elaboration time through module-level scanning.
                statements.append(_LocalDeclaration(declaration=decl))
                continue
            declarations_allowed = False
            statements.append(self._parse_statement())
        self._expect("end")
        return ast.Block(statements=statements, name=name)

    def _parse_if(self) -> ast.IfStatement:
        self._expect("if")
        self._expect("(")
        condition = self.parse_expression()
        self._expect(")")
        then_body = self._parse_statement()
        else_body = None
        if self._accept("else"):
            else_body = self._parse_statement()
        return ast.IfStatement(condition=condition, then_body=then_body, else_body=else_body)

    def _parse_case(self) -> ast.CaseStatement:
        kind = self._advance().text
        self._expect("(")
        subject = self.parse_expression()
        self._expect(")")
        items: List[ast.CaseItem] = []
        while not self._check("endcase"):
            if self._check_kind(TokenKind.EOF):
                raise ParseError("unexpected end of file inside case", self._peek())
            if self._accept("default"):
                self._accept(":")
                body = self._parse_statement()
                items.append(ast.CaseItem(patterns=[], body=body, is_default=True))
                continue
            patterns = [self.parse_expression()]
            while self._accept(","):
                patterns.append(self.parse_expression())
            self._expect(":")
            body = self._parse_statement()
            items.append(ast.CaseItem(patterns=patterns, body=body))
        self._expect("endcase")
        return ast.CaseStatement(kind=kind, subject=subject, items=items)

    def _parse_for(self) -> ast.ForStatement:
        self._expect("for")
        self._expect("(")
        init = self._parse_simple_assignment()
        self._expect(";")
        condition = self.parse_expression()
        self._expect(";")
        step = self._parse_simple_assignment()
        self._expect(")")
        body = self._parse_statement()
        return ast.ForStatement(init=init, condition=condition, step=step, body=body)

    def _parse_while(self) -> ast.WhileStatement:
        self._expect("while")
        self._expect("(")
        condition = self.parse_expression()
        self._expect(")")
        return ast.WhileStatement(condition=condition, body=self._parse_statement())

    def _parse_repeat(self) -> ast.RepeatStatement:
        self._expect("repeat")
        self._expect("(")
        count = self.parse_expression()
        self._expect(")")
        return ast.RepeatStatement(count=count, body=self._parse_statement())

    def _parse_event_control(self) -> ast.EventControlStatement:
        self._expect("@")
        controls: List[ast.EventControl] = []
        is_star = False
        if self._accept("*"):
            is_star = True
        elif self._accept("("):
            if self._accept("*"):
                is_star = True
                self._expect(")")
            else:
                while True:
                    edge = None
                    if self._peek().text in ("posedge", "negedge"):
                        edge = self._advance().text
                    signal = self.parse_expression()
                    controls.append(ast.EventControl(edge=edge, signal=signal))
                    if self._accept(",") or self._accept("or"):
                        continue
                    break
                self._expect(")")
        else:
            signal = self.parse_expression()
            controls.append(ast.EventControl(edge=None, signal=signal))
        body = None
        if self._accept(";"):
            body = None
        else:
            body = self._parse_statement()
        return ast.EventControlStatement(controls=controls, body=body, is_star=is_star)

    def _parse_system_task(self) -> ast.SystemTaskCall:
        name = self._advance().text
        args: List[ast.Expression] = []
        if self._accept("("):
            if not self._check(")"):
                args.append(self.parse_expression())
                while self._accept(","):
                    args.append(self.parse_expression())
            self._expect(")")
        self._expect(";")
        return ast.SystemTaskCall(name=name, args=args)

    def _parse_lvalue(self) -> ast.Expression:
        """Parse an assignment target (identifier, select or concatenation).

        Unlike :meth:`parse_expression` this never consumes binary operators,
        so ``count <= 0`` is parsed as target ``count`` plus a non-blocking
        assignment instead of a ``<=`` comparison.
        """
        if self._check("{"):
            return self._parse_concatenation()
        return self._parse_postfix()

    def _parse_simple_assignment(self) -> ast.Assignment:
        target = self._parse_lvalue()
        blocking = True
        if self._accept("="):
            blocking = True
        elif self._accept("<="):
            blocking = False
        else:
            raise ParseError("expected '=' or '<=' in assignment", self._peek())
        value = self.parse_expression()
        return ast.Assignment(target=target, value=value, blocking=blocking)

    def _parse_assignment_or_task_call(self) -> ast.Statement:
        start = self.index
        target = self._parse_lvalue()
        if self._check("(") and isinstance(target, ast.Identifier):
            # User task call with arguments.
            self._advance()
            args: List[ast.Expression] = []
            if not self._check(")"):
                args.append(self.parse_expression())
                while self._accept(","):
                    args.append(self.parse_expression())
            self._expect(")")
            self._expect(";")
            return ast.TaskCallStatement(name=target.name, args=args)
        if self._check(";") and isinstance(target, ast.Identifier):
            self._advance()
            return ast.TaskCallStatement(name=target.name, args=[])
        if self._check(";") and isinstance(target, ast.FunctionCall):
            # ``my_task(arg1, arg2);`` — the primary parser consumed it as a
            # call expression; as a statement it is a task invocation.
            self._advance()
            return ast.TaskCallStatement(name=target.name, args=target.args)
        blocking = True
        if self._accept("="):
            blocking = True
        elif self._accept("<="):
            blocking = False
        else:
            raise ParseError("expected assignment operator", self.tokens[start])
        delay = None
        if self._accept("#"):
            delay = self._parse_delay_value()
        if self._check("@"):
            # Intra-assignment event control: parse and discard the control,
            # keeping only the value expression semantics.
            self._advance()
            if self._accept("("):
                while not self._check(")"):
                    self._advance()
                self._expect(")")
        value = self.parse_expression()
        self._expect(";")
        return ast.Assignment(target=target, value=value, blocking=blocking, delay=delay)

    # -- expressions --------------------------------------------------------

    def parse_expression(self) -> ast.Expression:
        """Parse a full expression including the ternary operator."""
        condition = self._parse_binary(0)
        if self._accept("?"):
            if_true = self.parse_expression()
            self._expect(":")
            if_false = self.parse_expression()
            return ast.Conditional(condition=condition, if_true=if_true, if_false=if_false)
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expression:
        left = self._parse_unary()
        while True:
            op = self._peek().text
            precedence = _BINARY_PRECEDENCE.get(op)
            if precedence is None or precedence < min_precedence:
                return left
            # '<=' is ambiguous with non-blocking assignment; as an expression
            # operator it is only valid here, so consume it.
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.BinaryOp(op=op, left=left, right=right)

    def _parse_unary(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.text in _UNARY_OPS:
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(op=token.text, operand=operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expression:
        expr = self._parse_primary()
        while True:
            if self._check("["):
                self._advance()
                first = self.parse_expression()
                if self._check(":") or self._check("+:") or self._check("-:"):
                    mode = self._advance().text
                    second = self.parse_expression()
                    self._expect("]")
                    expr = ast.PartSelect(target=expr, msb=first, lsb=second, mode=mode)
                else:
                    self._expect("]")
                    expr = ast.BitSelect(target=expr, index=first)
            elif self._check(".") and isinstance(expr, ast.Identifier):
                # Hierarchical name: fold into a dotted identifier.
                self._advance()
                member = self._expect_identifier()
                expr = ast.Identifier(name=f"{expr.name}.{member}")
            else:
                return expr

    def _parse_primary(self) -> ast.Expression:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return _parse_number_token(token.text)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.StringLiteral(text=token.text[1:-1])
        if token.kind is TokenKind.SYSTEM_IDENTIFIER:
            self._advance()
            args: List[ast.Expression] = []
            if self._accept("("):
                if not self._check(")"):
                    args.append(self.parse_expression())
                    while self._accept(","):
                        args.append(self.parse_expression())
                self._expect(")")
            return ast.FunctionCall(name=token.text, args=args)
        if token.kind is TokenKind.IDENTIFIER:
            self._advance()
            if self._check("(") and token.text not in _GATE_TYPES:
                self._advance()
                args = []
                if not self._check(")"):
                    args.append(self.parse_expression())
                    while self._accept(","):
                        args.append(self.parse_expression())
                self._expect(")")
                return ast.FunctionCall(name=token.text, args=args)
            return ast.Identifier(name=token.text)
        if self._accept("("):
            expr = self.parse_expression()
            self._expect(")")
            return expr
        if self._check("{"):
            return self._parse_concatenation()
        raise ParseError("expected expression", token)

    def _parse_concatenation(self) -> ast.Expression:
        self._expect("{")
        first = self.parse_expression()
        if self._check("{"):
            inner = self._parse_concatenation()
            self._expect("}")
            if not isinstance(inner, ast.Concatenation):
                inner = ast.Concatenation(parts=[inner])
            return ast.Replication(count=first, value=inner)
        parts = [first]
        while self._accept(","):
            parts.append(self.parse_expression())
        self._expect("}")
        return ast.Concatenation(parts=parts)


from dataclasses import dataclass, field  # noqa: E402  (local statement wrapper)


@dataclass
class _LocalDeclaration(ast.Statement):
    """A declaration appearing inside a named begin/end block."""

    declaration: ast.NetDeclaration = field(default=None)  # type: ignore[assignment]


def _parse_number_token(text: str) -> ast.Number:
    """Interpret a numeric literal token into an :class:`ast.Number`."""
    stripped = text.replace("_", "")
    if "'" not in stripped:
        return ast.Number(text=text, width=None, base="d", value_text=stripped)
    size_part, rest = stripped.split("'", 1)
    signed = False
    if rest and rest[0].lower() == "s":
        signed = True
        rest = rest[1:]
    base = rest[0].lower()
    value_text = rest[1:]
    width = int(size_part) if size_part else None
    return ast.Number(text=text, width=width, base=base, value_text=value_text, signed=signed)


def parse_source(source: str) -> ast.SourceFile:
    """Parse ``source`` into a :class:`SourceFile` AST."""
    return Parser(source).parse_source()


def parse_module(source: str) -> ast.ModuleDef:
    """Parse ``source`` and return its first module definition."""
    return parse_source(source).modules[0]
