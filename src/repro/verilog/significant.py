"""Identification of syntactically significant tokens (paper Fig. 3).

The paper extracts significant tokens in two steps:

1. parse the code into an AST and collect *AST keywords*: identifiers and
   literal leaves that carry critical structural information (module names,
   port/net names, numeric widths, ...);
2. supplement them with a fixed list of *extra keywords* — commonly used
   Verilog constructs such as ``module``, ``endmodule``, ``negedge`` — plus the
   structural operators that delimit code fragments.

Together these form the set of significant tokens around which decoding stops
are aligned.
"""

from __future__ import annotations

from typing import List, Set

from repro.verilog import ast_nodes as ast
from repro.verilog.syntax import check_syntax

#: Fixed supplementary keyword set (paper: "commonly used Verilog constructs,
#: such as negedge and endmodule").  Ordered roughly by how often they appear.
EXTRA_KEYWORDS: tuple = (
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "reg",
    "integer",
    "parameter",
    "localparam",
    "assign",
    "always",
    "initial",
    "begin",
    "end",
    "if",
    "else",
    "case",
    "casex",
    "casez",
    "endcase",
    "default",
    "for",
    "while",
    "repeat",
    "forever",
    "posedge",
    "negedge",
    "function",
    "endfunction",
    "task",
    "endtask",
    "generate",
    "endgenerate",
    "genvar",
    "signed",
    "<=",
    "==",
    "!=",
    "&&",
    "||",
    "(",
    ")",
    ";",
)


def extract_ast_keywords(source: str) -> List[str]:
    """Extract AST keywords (identifier and literal leaves) from Verilog code.

    Args:
        source: Verilog source text.  It must be syntactically valid; invalid
            code yields an empty list (matching the paper's pipeline, where
            only cleaned code reaches this stage).

    Returns:
        A deduplicated, order-preserving list of leaf strings found in the AST:
        module names, port names, net/register names, instance names, literal
        values and user function names.
    """
    result = check_syntax(source)
    if not result.ok or result.ast is None:
        return []
    seen: Set[str] = set()
    keywords: List[str] = []

    def add(word: str) -> None:
        if word and word not in seen:
            seen.add(word)
            keywords.append(word)

    for module in result.ast.modules:
        add(module.name)
        for node in module.walk():
            if isinstance(node, ast.Identifier):
                add(node.name)
            elif isinstance(node, ast.Number):
                add(node.text)
            elif isinstance(node, ast.Port):
                add(node.name)
            elif isinstance(node, ast.PortDeclaration):
                for name in node.names:
                    add(name)
            elif isinstance(node, ast.NetDeclaration):
                for name in node.names:
                    add(name)
            elif isinstance(node, ast.ParameterDeclaration):
                for name in node.names:
                    add(name)
            elif isinstance(node, ast.ModuleInstance):
                add(node.module_name)
                add(node.instance_name)
            elif isinstance(node, ast.FunctionCall):
                add(node.name)
            elif isinstance(node, (ast.FunctionDeclaration, ast.TaskDeclaration)):
                add(node.name)
    return keywords


def extract_significant_tokens(source: str) -> List[str]:
    """Return the full set of syntactically significant tokens for ``source``.

    This is the union of the AST keywords (code-specific) and the fixed
    :data:`EXTRA_KEYWORDS` (language-level), keeping AST keywords first as in
    the paper's Fig. 3.
    """
    tokens = extract_ast_keywords(source)
    seen = set(tokens)
    for keyword in EXTRA_KEYWORDS:
        if keyword not in seen:
            seen.add(keyword)
            tokens.append(keyword)
    return tokens
