"""Syntax checking convenience API.

The paper's data-refinement pipeline (Sec. III-A) uses the Stagira parser to
check every corpus sample and keeps only those that parse.  This module exposes
that operation as :func:`check_syntax`, returning a structured result that the
refinement pipeline and the syntax-quality evaluation both consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.verilog.ast_nodes import SourceFile
from repro.verilog.lexer import LexerError
from repro.verilog.parser import ParseError, parse_source


@dataclass
class SyntaxCheckResult:
    """Outcome of a syntax check.

    Attributes:
        ok: True if the source parsed without errors.
        ast: the parsed AST when ``ok`` is True.
        errors: human-readable diagnostics when ``ok`` is False.
        module_names: names of the modules found (empty on failure).
    """

    ok: bool
    ast: Optional[SourceFile] = None
    errors: List[str] = field(default_factory=list)
    module_names: List[str] = field(default_factory=list)


def check_syntax(source: str) -> SyntaxCheckResult:
    """Parse ``source`` and report whether it is syntactically valid Verilog.

    This never raises: lexer and parser failures are converted into
    diagnostics on the returned result.
    """
    if not source or not source.strip():
        return SyntaxCheckResult(ok=False, errors=["empty source"])
    try:
        tree = parse_source(source)
    except (ParseError, LexerError, RecursionError) as exc:
        return SyntaxCheckResult(ok=False, errors=[str(exc)])
    if not tree.modules:
        # A syntactically "valid" candidate with no module is useless to the
        # refinement pipeline and the pass@k grader: a comment-only or
        # directive-only sample must not count as passing.  The parser
        # already rejects module-free sources, but the grading contract
        # (>= 1 module) is enforced here too so it cannot silently regress
        # if the parser ever grows a laxer entry point.
        return SyntaxCheckResult(ok=False, errors=["source contains no modules"])
    return SyntaxCheckResult(ok=True, ast=tree, module_names=[m.name for m in tree.modules])
