"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--runslow",
        action="store_true",
        default=False,
        help="run slow tests (full-size property sweeps; CI's coverage job passes this)",
    )


def pytest_collection_modifyitems(config: pytest.Config, items) -> None:
    """Deselect ``slow``-marked tests unless explicitly requested.

    The property suites run abbreviated case counts by default so the local
    feedback loop stays fast; CI's coverage job runs them full-size with
    ``--runslow`` (or ``REPRO_RUN_SLOW=1``, which also scales the case
    counts — see ``tests/proptest.py``).
    """
    if config.getoption("--runslow") or os.environ.get("REPRO_RUN_SLOW", "") == "1":
        return
    skip_slow = pytest.mark.skip(reason="slow test: pass --runslow (or REPRO_RUN_SLOW=1) to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


def tiny_pipeline_config() -> PipelineConfig:
    """The canonical tiny pipeline configuration shared by the test fixture,
    the golden-token fixtures and ``scripts/regen_golden.py`` — the goldens
    are only meaningful if all three build the identical pipeline."""
    return PipelineConfig(
        corpus_items=36,
        vocab_size=400,
        model_dim=32,
        num_layers=1,
        num_attention_heads=2,
        num_medusa_heads=4,
        max_seq_len=288,
        epochs=1,
        max_train_seq_len=160,
    )


SAMPLE_DESIGN = """module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule
"""

SAMPLE_COUNTER = """module counter #(parameter WIDTH = 8) (
    input clk,
    input rst,
    input en,
    output reg [WIDTH-1:0] count
);
    always @(posedge clk or posedge rst) begin
        if (rst) count <= 0;
        else if (en) count <= count + 1'b1;
    end
endmodule
"""


@pytest.fixture(scope="session")
def sample_design() -> str:
    """The paper's running data_register example."""
    return SAMPLE_DESIGN


@pytest.fixture(scope="session")
def sample_counter() -> str:
    """A parameterised counter used across parser/simulator tests."""
    return SAMPLE_COUNTER


@pytest.fixture(scope="session")
def tiny_pipeline() -> VerilogSpecPipeline:
    """A very small end-to-end pipeline with all three methods trained.

    Session-scoped because training, although tiny, takes a few seconds; the
    integration tests share a single instance and must not mutate it.
    """
    pipeline = VerilogSpecPipeline(tiny_pipeline_config())
    pipeline.prepare()
    pipeline.train_all()
    return pipeline
