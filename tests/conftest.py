"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline


SAMPLE_DESIGN = """module data_register (
    input clk,
    input [3:0] data_in,
    output reg [3:0] data_out
);
    always @(posedge clk) begin
        data_out <= data_in;
    end
endmodule
"""

SAMPLE_COUNTER = """module counter #(parameter WIDTH = 8) (
    input clk,
    input rst,
    input en,
    output reg [WIDTH-1:0] count
);
    always @(posedge clk or posedge rst) begin
        if (rst) count <= 0;
        else if (en) count <= count + 1'b1;
    end
endmodule
"""


@pytest.fixture(scope="session")
def sample_design() -> str:
    """The paper's running data_register example."""
    return SAMPLE_DESIGN


@pytest.fixture(scope="session")
def sample_counter() -> str:
    """A parameterised counter used across parser/simulator tests."""
    return SAMPLE_COUNTER


@pytest.fixture(scope="session")
def tiny_pipeline() -> VerilogSpecPipeline:
    """A very small end-to-end pipeline with all three methods trained.

    Session-scoped because training, although tiny, takes a few seconds; the
    integration tests share a single instance and must not mutate it.
    """
    config = PipelineConfig(
        corpus_items=36,
        vocab_size=400,
        model_dim=32,
        num_layers=1,
        num_attention_heads=2,
        num_medusa_heads=4,
        max_seq_len=288,
        epochs=1,
        max_train_seq_len=160,
    )
    pipeline = VerilogSpecPipeline(config)
    pipeline.prepare()
    pipeline.train_all()
    return pipeline
