"""Tiny dependency-free property-testing helper for the test suite.

A deliberately small substitute for hypothesis: a seeded random case
generator (:class:`Cases`) plus a shrink-free runner (:func:`for_all`) that
replays deterministically and reports the failing case index and seed so a
failure can be reproduced with ``for_all(..., only_case=N)``.

Case counts scale with the environment: property suites run a handful of
cases locally (fast feedback) and full-size under the ``slow`` pytest marker
in CI's coverage job (``--runslow`` / ``REPRO_RUN_SLOW=1``); see
:func:`num_cases`.
"""

from __future__ import annotations

import os
import random
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")

#: Environment switch the CI coverage job sets so the slow, full-size
#: property runs are selected (mirrors pytest's ``--runslow`` option).
RUN_SLOW_ENV = "REPRO_RUN_SLOW"


def slow_enabled() -> bool:
    """True when full-size property runs are requested via the environment."""
    return os.environ.get(RUN_SLOW_ENV, "") == "1"


def num_cases(quick: int, full: int) -> int:
    """Case count for a property: ``quick`` locally, ``full`` in slow runs."""
    return full if slow_enabled() else quick


class Cases:
    """Seeded random case generator handed to every property function.

    Thin, explicit wrappers around :mod:`random` so properties read as
    specifications; each case gets its own deterministic stream.
    """

    def __init__(self, seed: int, case_index: int) -> None:
        self.case_index = case_index
        # One independent deterministic stream per (seed, case) pair.
        self._rng = random.Random(seed * 1_000_003 + case_index)

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._rng.randint(low, high)

    def boolean(self, p_true: float = 0.5) -> bool:
        return self._rng.random() < p_true

    def choice(self, options: Sequence[T]) -> T:
        return self._rng.choice(list(options))

    def subset(self, options: Sequence[T], size: int) -> List[T]:
        """A random ``size``-element sample without replacement."""
        return self._rng.sample(list(options), size)

    def token(self, vocab_size: int) -> int:
        return self._rng.randrange(vocab_size)

    def token_list(self, length: int, vocab_size: int) -> List[int]:
        """A random token sequence of exactly ``length`` ids."""
        return [self._rng.randrange(vocab_size) for _ in range(length)]

    def candidate_set(
        self,
        count: int,
        max_length: int,
        vocab_size: int,
        shared_prefix: bool = False,
        with_duplicates: bool = False,
    ) -> List[List[int]]:
        """Random non-empty candidate token lists for tree-verification properties.

        ``shared_prefix`` forces an adversarial common prefix across a random
        subset of candidates (the case tree dedup exists for);
        ``with_duplicates`` re-inserts an exact copy of one candidate.
        """
        candidates = [
            self.token_list(self.integer(1, max_length), vocab_size) for _ in range(count)
        ]
        if shared_prefix and count >= 2:
            # prefix is non-empty and max_length >= 1, so the truncated
            # result is always a valid (non-empty) candidate.
            prefix = self.token_list(self.integer(1, max_length), vocab_size)
            for index in self.subset(range(count), self.integer(2, count)):
                keep = candidates[index][: max(max_length - len(prefix), 0)]
                candidates[index] = (prefix + keep)[:max_length]
        if with_duplicates and count >= 2:
            source, target = self.subset(range(count), 2)
            candidates[target] = list(candidates[source])
        return candidates


def for_all(
    cases: int,
    property_fn: Callable[[Cases], None],
    seed: int = 0,
    only_case: Optional[int] = None,
) -> None:
    """Run ``property_fn`` over ``cases`` deterministic seeded cases.

    No shrinking: cases are independent and replayable, so a failure report
    names the case index and seed, and ``only_case`` re-runs exactly that
    case under a debugger.

    Raises:
        AssertionError: re-raised from the first failing case, prefixed with
            the reproduction coordinates.
    """
    indices = range(cases) if only_case is None else [only_case]
    for case_index in indices:
        try:
            property_fn(Cases(seed, case_index))
        except AssertionError as error:
            raise AssertionError(
                f"property failed on case {case_index} of {cases} (seed={seed}, "
                f"reproduce with only_case={case_index}): {error}"
            ) from error
