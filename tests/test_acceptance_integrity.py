"""Tests for typical acceptance (eq. 1) and fragment-integrity truncation."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.acceptance import TypicalAcceptance
from repro.core.integrity import ends_at_fragment_boundary, truncate_to_complete_fragment

FRAG = 4
EOS = 3


class TestTypicalAcceptance:
    def test_threshold_capped_by_epsilon(self):
        acceptance = TypicalAcceptance(epsilon=0.09, delta=0.3)
        uniform = np.full(100, 0.01)
        assert acceptance.threshold(uniform) <= 0.09

    def test_threshold_scales_with_entropy(self):
        acceptance = TypicalAcceptance(epsilon=0.5, delta=0.5)
        sharp = np.zeros(10)
        sharp[0] = 1.0
        flat = np.full(10, 0.1)
        assert acceptance.threshold(sharp) > acceptance.threshold(flat)

    def test_accepts_high_probability_token(self):
        acceptance = TypicalAcceptance()
        probs = np.array([0.9, 0.05, 0.05])
        assert acceptance.accepts(probs, 0)

    def test_rejects_low_probability_token_sharp_distribution(self):
        acceptance = TypicalAcceptance()
        probs = np.array([0.98, 0.01, 0.01])
        assert not acceptance.accepts(probs, 2)

    def test_accepted_prefix_stops_at_first_rejection(self):
        acceptance = TypicalAcceptance()
        good = np.log(np.array([0.9, 0.05, 0.05]))
        bad = np.log(np.array([0.98, 0.01, 0.01]))
        logits = [good, bad, good]
        candidates = [0, 2, 0]
        assert acceptance.accepted_prefix_length(logits, candidates) == 1

    def test_accepted_prefix_full_run(self):
        acceptance = TypicalAcceptance()
        good = np.log(np.array([0.9, 0.05, 0.05]))
        assert acceptance.accepted_prefix_length([good, good, good], [0, 0, 0]) == 3

    def test_accepted_prefix_empty_candidates(self):
        acceptance = TypicalAcceptance()
        assert acceptance.accepted_prefix_length([], []) == 0

    def test_acceptance_flags_no_prefix_constraint(self):
        acceptance = TypicalAcceptance()
        good = np.log(np.array([0.9, 0.05, 0.05]))
        bad = np.log(np.array([0.98, 0.01, 0.01]))
        flags = acceptance.acceptance_flags([bad, good], [2, 0])
        assert flags == [False, True]

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=2, max_value=50), st.integers(0, 10_000))
    def test_argmax_token_always_accepted(self, vocab, seed):
        """Property: the most probable token always satisfies the criterion."""
        rng = np.random.default_rng(seed)
        probs = rng.dirichlet(np.ones(vocab))
        acceptance = TypicalAcceptance()
        assert acceptance.accepts(probs, int(np.argmax(probs)))

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10_000))
    def test_acceptance_monotone_in_probability(self, seed):
        """Property: if a token is accepted, any higher-probability token is too."""
        rng = np.random.default_rng(seed)
        probs = rng.dirichlet(np.ones(12))
        acceptance = TypicalAcceptance()
        order = np.argsort(probs)
        accepted = [acceptance.accepts(probs, int(i)) for i in order]
        # Once accepted along the sorted order, all later (higher-prob) tokens accepted.
        if any(accepted):
            first = accepted.index(True)
            assert all(accepted[first:])


class TestIntegrityTruncation:
    def test_truncates_to_last_frag(self):
        tokens = [10, FRAG, 11, 12]
        assert truncate_to_complete_fragment(tokens, FRAG) == [10, FRAG]

    def test_keeps_full_run_when_last_is_frag(self):
        tokens = [10, 11, FRAG]
        assert truncate_to_complete_fragment(tokens, FRAG) == tokens

    def test_multiple_boundaries_keeps_last(self):
        tokens = [FRAG, 10, FRAG, 11]
        assert truncate_to_complete_fragment(tokens, FRAG) == [FRAG, 10, FRAG]

    def test_no_boundary_keeps_minimum(self):
        tokens = [10, 11, 12]
        assert truncate_to_complete_fragment(tokens, FRAG) == [10]

    def test_no_boundary_minimum_zero(self):
        assert truncate_to_complete_fragment([10, 11], FRAG, minimum_tokens=0) == []

    def test_empty_input(self):
        assert truncate_to_complete_fragment([], FRAG) == []

    def test_eos_counts_as_boundary(self):
        tokens = [10, EOS, 11]
        assert truncate_to_complete_fragment(tokens, FRAG, eos_id=EOS) == [10, EOS]

    def test_ends_at_fragment_boundary(self):
        assert ends_at_fragment_boundary([], FRAG)
        assert ends_at_fragment_boundary([10, FRAG], FRAG)
        assert ends_at_fragment_boundary([10, EOS], FRAG, eos_id=EOS)
        assert not ends_at_fragment_boundary([10, 11], FRAG)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.sampled_from([FRAG, 10, 11, 12, EOS]), max_size=20))
    def test_truncation_result_always_ends_at_boundary_or_is_minimal(self, tokens):
        """Property: the truncated run ends at a boundary, or no boundary existed."""
        result = truncate_to_complete_fragment(tokens, FRAG, eos_id=EOS)
        if any(t in (FRAG, EOS) for t in tokens):
            assert ends_at_fragment_boundary(result, FRAG, eos_id=EOS)
        else:
            assert len(result) <= 1

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.sampled_from([FRAG, 10, 11]), max_size=20))
    def test_truncation_is_prefix(self, tokens):
        """Property: the truncated run is always a prefix of the input."""
        result = truncate_to_complete_fragment(tokens, FRAG)
        assert result == tokens[: len(result)]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.sampled_from([FRAG, 10, 11]), max_size=20))
    def test_truncation_idempotent(self, tokens):
        """Property: truncating twice gives the same result as truncating once."""
        once = truncate_to_complete_fragment(tokens, FRAG)
        twice = truncate_to_complete_fragment(once, FRAG)
        assert once == twice
