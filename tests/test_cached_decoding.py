"""Cached decoding must be token-identical to the full-recompute path.

These are the equivalence guarantees the speed benchmarks rely on: the KV
cache is an optimisation, not a behaviour change, for all three decoding
regimes (NTP / Medusa / Ours), under both greedy decoding and temperature
sampling, on both backbones.
"""

import pytest

from repro.core.pipeline import PipelineConfig, VerilogSpecPipeline
from repro.models.generation import GenerationConfig

METHODS = ("ntp", "medusa", "ours")


def _configs():
    return [
        ("greedy", GenerationConfig.greedy_config(48)),
        ("sampling", GenerationConfig.sampling_config(0.8, 48, seed=13)),
    ]


def _assert_equivalent(cached, uncached):
    assert cached.token_ids == uncached.token_ids
    assert cached.steps == uncached.steps
    assert cached.stopped_by_eos == uncached.stopped_by_eos
    cached_records = [(r.proposed, r.accepted, r.committed, r.ends_at_boundary) for r in cached.step_records]
    uncached_records = [(r.proposed, r.accepted, r.committed, r.ends_at_boundary) for r in uncached.step_records]
    assert cached_records == uncached_records


class TestDecoderOnlyEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("mode", ["greedy", "sampling"])
    def test_cached_matches_uncached(self, tiny_pipeline, method, mode):
        prompt = tiny_pipeline.examples[0].prompt_text()
        config = dict(_configs())[mode]
        cached = tiny_pipeline.decoder_for(method).generate_from_text(prompt, config)
        uncached = tiny_pipeline.decoder_for(method, use_cache=False).generate_from_text(prompt, config)
        _assert_equivalent(cached, uncached)

    def test_equivalence_across_prompts(self, tiny_pipeline):
        """Rollback after rejected candidates keeps later steps identical too."""
        config = GenerationConfig.greedy_config(64)
        for example in tiny_pipeline.examples[:3]:
            prompt = example.prompt_text()
            cached = tiny_pipeline.decoder_for("ours").generate_from_text(prompt, config)
            uncached = tiny_pipeline.decoder_for("ours", use_cache=False).generate_from_text(prompt, config)
            _assert_equivalent(cached, uncached)

    @pytest.mark.parametrize("method", ["ntp", "ours"])
    def test_overlong_prompt_returns_empty_like_uncached(self, tiny_pipeline, method):
        max_len = tiny_pipeline.models[method].backbone.max_seq_len
        prompt_ids = [5] * max_len
        config = GenerationConfig.greedy_config(8)
        cached = tiny_pipeline.decoder_for(method).generate(prompt_ids, config)
        uncached = tiny_pipeline.decoder_for(method, use_cache=False).generate(prompt_ids, config)
        assert cached.token_ids == uncached.token_ids == []

    def test_use_cache_flag_recorded(self, tiny_pipeline):
        assert tiny_pipeline.decoder_for("ours").use_cache is True
        assert tiny_pipeline.decoder_for("ours", use_cache=False).use_cache is False

    def test_prefill_time_reported_and_excluded(self, tiny_pipeline):
        prompt = tiny_pipeline.examples[0].prompt_text()
        result = tiny_pipeline.decoder_for("ntp").generate_from_text(prompt, GenerationConfig.greedy_config(8))
        assert result.prefill_seconds > 0.0
        assert result.wall_time_seconds > result.decode_seconds
        assert result.tokens_per_second == pytest.approx(result.tokens_generated / result.decode_seconds)

    def test_uncached_has_no_prefill_split(self, tiny_pipeline):
        prompt = tiny_pipeline.examples[0].prompt_text()
        decoder = tiny_pipeline.decoder_for("ntp", use_cache=False)
        result = decoder.generate_from_text(prompt, GenerationConfig.greedy_config(8))
        assert result.prefill_seconds == 0.0
        assert result.decode_seconds == result.wall_time_seconds


class TestEncoderDecoderEquivalence:
    @pytest.fixture(scope="class")
    def encdec_pipeline(self) -> VerilogSpecPipeline:
        config = PipelineConfig(
            corpus_items=30,
            vocab_size=400,
            architecture="encoder-decoder",
            model_dim=32,
            num_layers=1,
            num_attention_heads=2,
            num_medusa_heads=4,
            max_seq_len=288,
            epochs=1,
            max_train_seq_len=160,
        )
        pipeline = VerilogSpecPipeline(config)
        pipeline.prepare()
        pipeline.train_all()
        return pipeline

    @pytest.mark.parametrize("method", METHODS)
    def test_cached_matches_uncached_greedy(self, encdec_pipeline, method):
        prompt = encdec_pipeline.examples[0].prompt_text()
        config = GenerationConfig.greedy_config(40)
        cached = encdec_pipeline.decoder_for(method).generate_from_text(prompt, config)
        uncached = encdec_pipeline.decoder_for(method, use_cache=False).generate_from_text(prompt, config)
        _assert_equivalent(cached, uncached)

    def test_cached_matches_uncached_sampling(self, encdec_pipeline):
        prompt = encdec_pipeline.examples[0].prompt_text()
        config = GenerationConfig.sampling_config(0.8, 40, seed=5)
        cached = encdec_pipeline.decoder_for("ours").generate_from_text(prompt, config)
        uncached = encdec_pipeline.decoder_for("ours", use_cache=False).generate_from_text(prompt, config)
        _assert_equivalent(cached, uncached)
