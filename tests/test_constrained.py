"""Tests for grammar-constrained decoding (:mod:`repro.constrained`).

Four layers:

* **viability** — :func:`classify_prefix` against hand-picked prefixes,
  including the cases that forced the witness-based rules (``endmodule`` is
  dead even though its last token is "extendable"; ``begin`` survives as a
  module item only because it can grow into an instantiation identifier; a
  dangling partial number in a port list is dead even though the *token*
  could be finished), plus closure round-trips;
* **mask mechanics** — piece table, EOS gating, snapshot/restore, the
  tree-candidate pre-filter, and the rng-identity contract of
  ``masked_sample`` (the inert mask consumes exactly the unconstrained
  generator state);
* **identity properties** — whenever an unconstrained decode is
  grammar-clean at every committed step, the constrained decode of the same
  request is byte-identical (grammar on/off x greedy/sampling x tree on/off
  x sequential/serving);
* **fuzz** — masked decoding never emits an unparseable prefix and always
  finishes on a complete design, across random seeds and prompts.

Satellite regressions (fallback-rng statefulness, the ``check_syntax``
module guard, pass@k strictness) live here too.
"""

from __future__ import annotations

import numpy as np
import pytest

from proptest import for_all, num_cases

from repro.constrained import (
    PrefixVerdict,
    SyntaxMaskState,
    classify_prefix,
    completion_suffix,
    closure_token_ids,
    grammar_mask,
    is_complete_source,
    is_viable_prefix,
    masked_argmax,
    masked_choice,
    masked_sample,
    prefilter_candidates,
    token_pieces,
)
from repro.core.decoding import DecodingStrategy
from repro.evalbench import EvaluationRunner
from repro.evalbench.passk import pass_at_k, pass_at_k_single
from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.problems import ProblemSuite
from repro.models.generation import (
    GenerationConfig,
    reset_fallback_rngs,
    sample_from_logits,
)
from repro.serving import ServingEngine
from repro.verilog.lexer import Lexer, LexerError, TokenKind
from repro.verilog.syntax import check_syntax


# --------------------------------------------------------------------------- #
# Viable-prefix classification
# --------------------------------------------------------------------------- #


class TestClassifyPrefix:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "  \n\t",
            "// a comment\n",
            "/* block */",
            "module",
            "module m",
            "module m;",
            "module m(",
            "module m(a, b);",
            "module m; wire w;",
            "module m; assign w =",
            "module m; assign w = a &",
            "module m; always @(posedge clk) begin",
            "module m; endmodul",  # identifier may still grow into the keyword
            "module m; wire w; assign w = 4'",  # partial number, legal position
            "module m; /* open comment",
            'module m; initial $display("open string',
        ],
    )
    def test_viable(self, text):
        assert classify_prefix(text) is PrefixVerdict.VIABLE
        assert is_viable_prefix(text)

    @pytest.mark.parametrize(
        "text",
        [
            "module m; endmodule",
            "module m(a, b); assign a = b; endmodule",
            "// header\nmodule m; wire w; endmodule\n",
        ],
    )
    def test_complete(self, text):
        assert classify_prefix(text) is PrefixVerdict.COMPLETE
        assert is_complete_source(text)
        assert is_viable_prefix(text)  # complete sources are trivially viable

    @pytest.mark.parametrize(
        "text",
        [
            "endmodule",  # extendable last token, but every extension is dead
            "wire w;",
            "module m; endmodule endmodule",
            "module m; @",  # '@' cannot start a module item
            "module m; assign a <",  # continuous assign takes only '='
            "module 4",
            "\nmodule multiple( mux\n'S",  # partial number dead in a port list
        ],
    )
    def test_invalid(self, text):
        assert classify_prefix(text) is PrefixVerdict.INVALID
        assert not is_viable_prefix(text)

    def test_begin_survives_as_instantiation_prefix(self):
        # 'begin' is not a legal module item, but the token may still grow
        # into an identifier ('beginx') opening a module instantiation — the
        # witness-based extendable retry must find that continuation.
        assert classify_prefix("module m; begin") is PrefixVerdict.VIABLE

    def test_prefix_closure_along_complete_source(self):
        """Every prefix of a valid source is viable (the mask's core invariant)."""
        source = "module top(a, b, y);\n  wire t;\n  assign t = a & b;\n  assign y = ~t;\nendmodule\n"
        for cut in range(len(source) + 1):
            assert classify_prefix(source[:cut]) is not PrefixVerdict.INVALID, source[:cut]

    def test_lexer_partial_number_raises_lexer_error(self):
        """``4'`` at end of input is a LexerError, not a KeyError crash."""
        lexer = Lexer("assign w = 4'")
        with pytest.raises(LexerError):
            while lexer.next_token().kind is not TokenKind.EOF:
                pass


class TestCompletionSuffix:
    @pytest.mark.parametrize(
        "prefix",
        [
            "module m;",
            "module m",
            "module counter(clk, rst);",
            "module m; wire w;",
            "module m; assign w =",
            "module m; always @(posedge clk) begin",
            "module m; /* open comment",
            "module m; wire w; assign w = 4'",
        ],
    )
    def test_closure_completes(self, prefix):
        suffix = completion_suffix(prefix)
        assert suffix is not None
        assert is_complete_source(prefix + suffix)

    def test_complete_source_needs_no_suffix(self):
        assert completion_suffix("module m; endmodule") == ""

    def test_dead_prefix_has_no_closure(self):
        assert completion_suffix("endmodule") is None


# --------------------------------------------------------------------------- #
# Mask mechanics
# --------------------------------------------------------------------------- #


class TestSyntaxMaskState:
    def test_grammar_registry(self, tiny_pipeline):
        tokenizer = tiny_pipeline.tokenizer
        assert grammar_mask(None, tokenizer) is None
        assert isinstance(grammar_mask("verilog", tokenizer), SyntaxMaskState)
        with pytest.raises(ValueError):
            grammar_mask("vhdl", tokenizer)

    def test_piece_table(self, tiny_pipeline):
        tokenizer = tiny_pipeline.tokenizer
        pieces = token_pieces(tokenizer)
        assert len(pieces) == tokenizer.vocab_size
        assert pieces is token_pieces(tokenizer)  # cached per tokenizer
        vocab = tokenizer.vocab
        for special in (vocab.pad_id, vocab.bos_id, vocab.eos_id, vocab.ignore_id):
            assert pieces[special] == ""
        # Pieces concatenate to exactly the keep_frag=False decode.
        ids = tokenizer.encode("module m; endmodule", add_bos=False)
        assert "".join(pieces[i] for i in ids) == tokenizer.decode(ids, keep_frag=False)

    def test_eos_gating(self, tiny_pipeline):
        tokenizer = tiny_pipeline.tokenizer
        mask = grammar_mask("verilog", tokenizer)
        assert not mask.allows(mask.eos_id)  # empty text: nothing to finish
        for token_id in tokenizer.encode("module m; endmodule", add_bos=False):
            mask.advance(token_id)
        assert mask.is_complete()
        assert mask.allows(mask.eos_id)

    def test_blocked_specials(self, tiny_pipeline):
        tokenizer = tiny_pipeline.tokenizer
        vocab = tokenizer.vocab
        mask = grammar_mask("verilog", tokenizer)
        for blocked in (vocab.pad_id, vocab.bos_id, vocab.unk_id, vocab.ignore_id):
            assert not mask.allows(blocked)
        # [FRAG] contributes no text, so it can never break the prefix.
        assert mask.allows(vocab.token_to_id(tokenizer.special.frag))

    def test_snapshot_restore(self, tiny_pipeline):
        tokenizer = tiny_pipeline.tokenizer
        mask = grammar_mask("verilog", tokenizer)
        for token_id in tokenizer.encode("module m;", add_bos=False):
            mask.advance(token_id)
        base_text = mask.text
        mark = mask.snapshot()
        for token_id in tokenizer.encode(" wire w;", add_bos=False):
            mask.advance(token_id)
        assert mask.text != base_text
        mask.restore(mark)
        assert mask.text == base_text

    def test_allowed_token_ids_matches_allows(self, tiny_pipeline):
        tokenizer = tiny_pipeline.tokenizer
        mask = grammar_mask("verilog", tokenizer)
        for token_id in tokenizer.encode("module m; endmodul", add_bos=False):
            mask.advance(token_id)
        candidates = list(range(0, tokenizer.vocab_size, 7))
        subset = mask.allowed_token_ids(candidates)
        assert subset == [t for t in candidates if mask.allows(t)]
        assert set(subset) <= set(mask.allowed_token_ids())

    def test_closure_token_ids_completes_text(self, tiny_pipeline):
        tokenizer = tiny_pipeline.tokenizer
        mask = grammar_mask("verilog", tokenizer)
        for token_id in tokenizer.encode("module m; wire w;", add_bos=False):
            mask.advance(token_id)
        ids = closure_token_ids(mask, tokenizer)
        assert ids  # an open module needs closing
        assert mask.is_complete()  # closure advanced the mask through its own ids
        assert closure_token_ids(mask, tokenizer) == []  # idempotent once complete


class TestPrefilterCandidates:
    def _mask(self):
        # Synthetic vocabulary: index -> piece.  Index 5 is illegal after
        # 'module m;' ('@' cannot start a module item); eos_id points past
        # the table so EOS never collides with a real candidate.
        pieces = ["", "module ", "m", ";", " endmodule", " @", " wire w;"]
        return SyntaxMaskState(pieces, eos_id=99)

    def test_none_mask_is_identity(self):
        candidates = [[1, 2], [3]]
        assert prefilter_candidates(candidates, None) is candidates

    def test_cuts_at_first_disallowed(self):
        mask = self._mask()
        filtered = prefilter_candidates([[1, 2, 3, 4], [1, 2, 3, 5, 4]], mask)
        assert filtered == [[1, 2, 3, 4], [1, 2, 3]]

    def test_restores_mask_state(self):
        mask = self._mask()
        before = mask.snapshot()
        text = mask.text
        prefilter_candidates([[1, 2, 3], [5]], mask)
        assert mask.snapshot() == before
        assert mask.text == text

    def test_all_dead_keeps_one_token(self):
        mask = self._mask()
        # Both candidates start with an illegal piece: keep the proposal's
        # single best first token so the verify step still advances.
        assert prefilter_candidates([[5, 1], [5, 2]], mask) == [[5]]

    def test_drops_emptied_candidates(self):
        mask = self._mask()
        filtered = prefilter_candidates([[1, 2], [5, 1]], mask)
        assert filtered == [[1, 2]]


class TestMaskedSampling:
    def test_masked_argmax_identity_when_allowed(self):
        logits = np.array([0.1, 2.0, -1.0, 0.5])
        always = SyntaxMaskState([""] * 4, eos_id=99)
        assert masked_argmax(logits, None) == 1
        assert masked_argmax(logits, always) == 1

    def test_masked_argmax_falls_to_next_best(self):
        # Piece table where the argmax token is grammar-illegal from "".
        pieces = ["endmodule", "module ", " @", ""]
        mask = SyntaxMaskState(pieces, eos_id=99)
        logits = np.array([5.0, 1.0, 0.5, 0.0])
        assert masked_argmax(logits, mask) == 1

    def test_masked_choice_first_draw_matches_unconstrained_rng(self):
        probabilities = np.array([0.1, 0.5, 0.2, 0.2])
        inert = SyntaxMaskState([""] * 4, eos_id=99)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        unconstrained = int(rng_a.choice(4, p=probabilities))
        assert masked_choice(probabilities, rng_b, inert) == unconstrained
        # Identical generator state afterwards: the streams stay in lockstep.
        assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)

    def test_masked_sample_none_mask_is_sample_from_logits(self):
        logits = np.random.default_rng(0).normal(size=32)
        config = GenerationConfig.sampling_config(0.8, 8, seed=3)
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        assert masked_sample(logits, config, rng_a, None) == sample_from_logits(logits, config, rng_b)

    def test_masked_choice_samples_conditional_distribution(self):
        # Token 0 is illegal; the constrained draw must land on 1/2 with the
        # renormalised odds (statistical smoke check, fixed seed).
        pieces = ["endmodule", "module ", "// c\n"]
        mask = SyntaxMaskState(pieces, eos_id=99)
        probabilities = np.array([0.5, 0.375, 0.125])
        rng = np.random.default_rng(0)
        draws = [masked_choice(probabilities, rng, mask) for _ in range(400)]
        assert 0 not in draws
        share = draws.count(1) / len(draws)
        assert 0.6 < share < 0.9  # expected 0.75


# --------------------------------------------------------------------------- #
# Satellite regressions
# --------------------------------------------------------------------------- #


class TestFallbackRng:
    def test_successive_fallback_samples_differ(self):
        """rng=None must advance a persistent generator, not reseed per call."""
        reset_fallback_rngs()
        logits = np.zeros(64)  # uniform: fresh-seeded rngs would repeat forever
        config = GenerationConfig.sampling_config(1.0, 8, seed=0)
        draws = {sample_from_logits(logits, config, rng=None) for _ in range(8)}
        assert len(draws) > 1

    def test_fallback_stream_is_reproducible(self):
        logits = np.zeros(64)
        config = GenerationConfig.sampling_config(1.0, 8, seed=5)
        reset_fallback_rngs()
        first = [sample_from_logits(logits, config, rng=None) for _ in range(6)]
        reset_fallback_rngs()
        second = [sample_from_logits(logits, config, rng=None) for _ in range(6)]
        assert first == second

    def test_fallback_streams_keyed_by_seed(self):
        logits = np.zeros(64)
        reset_fallback_rngs()
        a = [sample_from_logits(logits, GenerationConfig.sampling_config(1.0, 8, seed=1), None) for _ in range(6)]
        reset_fallback_rngs()
        b = [sample_from_logits(logits, GenerationConfig.sampling_config(1.0, 8, seed=2), None) for _ in range(6)]
        assert a != b


class TestCheckSyntaxModuleGuard:
    @pytest.mark.parametrize("source", ["", "   \n", "// only a comment\n", "/* block */ // more\n"])
    def test_module_free_source_fails(self, source):
        result = check_syntax(source)
        assert not result.ok
        assert result.module_names == []

    def test_single_module_passes(self):
        result = check_syntax("module m; endmodule")
        assert result.ok
        assert result.module_names == ["m"]


class TestPassAtKStrictness:
    def test_equation_five_values(self):
        assert pass_at_k_single(10, 3, 1) == pytest.approx(0.3)
        assert pass_at_k_single(4, 2, 2) == pytest.approx(1.0 - 1.0 / 6.0)
        assert pass_at_k_single(5, 0, 3) == 0.0
        assert pass_at_k_single(5, 5, 1) == 1.0
        assert pass_at_k_single(0, 0, 1) == 0.0
        assert pass_at_k_single(6, 4, 3) == 1.0  # n - c < k: certain hit

    def test_oversized_k_warns_and_clamps(self):
        with pytest.warns(UserWarning, match="pass@10 requested with only n=5"):
            value = pass_at_k_single(5, 2, 10)
        assert value == pass_at_k_single(5, 2, 5)

    def test_oversized_k_strict_raises(self):
        with pytest.raises(ValueError, match="k <= n"):
            pass_at_k_single(5, 2, 10, strict=True)
        with pytest.raises(ValueError):
            pass_at_k([[True, False]], 3, strict=True)

    def test_invalid_counts_raise(self):
        with pytest.raises(ValueError):
            pass_at_k_single(3, 4, 1)
        with pytest.raises(ValueError):
            pass_at_k_single(3, 1, 0)

    def test_runner_strict_rejects_oversized_k_at_init(self, tiny_pipeline):
        with pytest.raises(ValueError, match="strict_pass_k"):
            EvaluationRunner(
                tiny_pipeline.decoder_for("ours"),
                samples_per_prompt=3,
                k_values=(1, 5),
                strict_pass_k=True,
            )


# --------------------------------------------------------------------------- #
# End-to-end identity, syntax guarantee, verified savings
# --------------------------------------------------------------------------- #


def _first_intervention(token_ids, tokenizer):
    """Replay an unconstrained trace through a fresh mask; index of the first
    token the mask would have blocked (``len(token_ids)`` when it never
    intervenes)."""
    mask = grammar_mask("verilog", tokenizer)
    for index, token_id in enumerate(token_ids):
        if not mask.allows(token_id):
            return index
        mask.advance(token_id)
    return len(token_ids)


class TestConstrainedDecoding:
    @pytest.mark.parametrize("tree_verify", [False, True])
    @pytest.mark.parametrize("greedy", [False, True])
    def test_constrained_output_always_parses(self, tiny_pipeline, tree_verify, greedy):
        decoder = tiny_pipeline.decoder_for("ours")
        for example in tiny_pipeline.examples[:3]:
            if greedy:
                config = GenerationConfig.greedy_config(48, tree_verify=tree_verify, grammar="verilog")
            else:
                config = GenerationConfig.sampling_config(
                    0.8, 48, seed=13, tree_verify=tree_verify, grammar="verilog"
                )
            result = decoder.generate_from_text(example.prompt_text(), config)
            assert check_syntax(result.code).ok, result.code

    @pytest.mark.parametrize("method", ["ntp", "ours"])
    @pytest.mark.parametrize("tree_verify", [False, True])
    def test_inert_mask_token_identity(self, tiny_pipeline, method, tree_verify):
        """While the mask is inert, grammar='verilog' is byte-identical.

        Under greedy decoding every accepted speculative prefix lies on the
        base model's unique argmax chain, so the constrained run must match
        the unconstrained one token for token up to the first position the
        mask actually blocks (and the whole trace when it never blocks)."""
        decoder = tiny_pipeline.decoder_for(method)
        tokenizer = tiny_pipeline.tokenizer
        inert_tokens = 0
        for example in tiny_pipeline.examples[:6]:
            config = GenerationConfig.greedy_config(40, tree_verify=tree_verify)
            baseline = decoder.generate_from_text(example.prompt_text(), config)
            cut = _first_intervention(baseline.token_ids, tokenizer)
            constrained = decoder.generate_from_text(
                example.prompt_text(),
                GenerationConfig.greedy_config(40, tree_verify=tree_verify, grammar="verilog"),
            )
            assert constrained.token_ids[:cut] == baseline.token_ids[:cut]
            inert_tokens += cut
        assert inert_tokens > 0  # the property must not hold vacuously

    def test_inert_prefix_identity_against_goldens(self, tiny_pipeline):
        """The pinned golden traces themselves bound the constrained run: up
        to the first masked position, constrained decoding reproduces the
        golden token stream exactly."""
        import json
        from pathlib import Path

        fixture = json.loads((Path(__file__).parent / "golden" / "ours.json").read_text())
        decoder = tiny_pipeline.decoder_for("ours")
        tokenizer = tiny_pipeline.tokenizer
        checked = 0
        for case in fixture["cases"]:
            spec = case["config"]
            if not spec["greedy"]:
                continue
            config = GenerationConfig(
                max_new_tokens=spec["max_new_tokens"],
                temperature=spec["temperature"],
                top_k=spec["top_k"],
                greedy=True,
                seed=spec["seed"],
                grammar="verilog",
            )
            for prompt, expected in zip(fixture["prompts"], case["outputs"]):
                cut = _first_intervention(expected, tokenizer)
                result = decoder.generate_from_text(prompt, config)
                assert result.token_ids[:cut] == expected[:cut]
                checked += cut
        assert checked > 0

    def test_grammar_none_bitwise_unchanged(self, tiny_pipeline):
        """grammar=None goes through the exact pre-change code paths."""
        decoder = tiny_pipeline.decoder_for("ours")
        prompt = tiny_pipeline.examples[0].prompt_text()
        for config in (
            GenerationConfig.greedy_config(32),
            GenerationConfig.greedy_config(32, tree_verify=True),
            GenerationConfig.sampling_config(0.8, 32, seed=4),
        ):
            first = decoder.generate_from_text(prompt, config)
            second = decoder.generate_from_text(prompt, config)
            assert first.token_ids == second.token_ids
            assert first.tokens_verified == first.tokens_verified_unpruned
            assert first.closure_tokens == 0

    @pytest.mark.parametrize("tree_verify", [False, True])
    def test_verified_positions_strictly_drop(self, tiny_pipeline, tree_verify):
        """The grammar pre-filter verifies strictly fewer positions than the
        same run would have verified unpruned (ours strategy, all prompts)."""
        decoder = tiny_pipeline.decoder_for("ours")
        total_verified = 0
        total_unpruned = 0
        for example in tiny_pipeline.examples:
            config = GenerationConfig.greedy_config(48, tree_verify=tree_verify, grammar="verilog")
            result = decoder.generate_from_text(example.prompt_text(), config)
            total_verified += result.tokens_verified
            total_unpruned += result.tokens_verified_unpruned
        assert total_verified < total_unpruned

    @pytest.mark.parametrize(
        "method,strategy",
        [("ntp", DecodingStrategy.NTP), ("medusa", DecodingStrategy.MEDUSA), ("ours", DecodingStrategy.OURS)],
    )
    @pytest.mark.parametrize("tree_verify", [False, True])
    def test_serving_matches_sequential_under_grammar(self, tiny_pipeline, method, strategy, tree_verify):
        prompts = [example.prompt_text() for example in tiny_pipeline.examples[:4]]
        configs = [
            GenerationConfig.greedy_config(24, tree_verify=tree_verify, grammar="verilog"),
            GenerationConfig.sampling_config(0.8, 24, seed=1, tree_verify=tree_verify, grammar="verilog"),
            GenerationConfig.greedy_config(24, tree_verify=tree_verify),
            GenerationConfig.sampling_config(0.8, 24, seed=3, tree_verify=tree_verify, grammar="verilog"),
        ]
        decoder = tiny_pipeline.decoder_for(method)
        sequential = [decoder.generate_from_text(p, c) for p, c in zip(prompts, configs)]

        engine = ServingEngine(tiny_pipeline.models[method], tiny_pipeline.tokenizer, strategy=strategy)
        request_ids = [engine.submit_text(p, c) for p, c in zip(prompts, configs)]
        results = engine.run()

        for request_id, expected in zip(request_ids, sequential):
            got = results[request_id]
            assert got.token_ids == expected.token_ids
            assert got.text == expected.text
            assert got.closure_tokens == expected.closure_tokens
            assert got.tokens_verified == expected.tokens_verified
            assert got.tokens_verified_unpruned == expected.tokens_verified_unpruned

    def test_masked_fuzz_never_unparseable(self, tiny_pipeline):
        """Fuzz: every committed prefix of a constrained decode stays viable
        and the finished design always parses."""
        decoder = tiny_pipeline.decoder_for("ours")
        tokenizer = tiny_pipeline.tokenizer
        pieces = token_pieces(tokenizer)
        prompts = [example.prompt_text() for example in tiny_pipeline.examples]

        def property_fn(cases):
            prompt = cases.choice(prompts)
            config = GenerationConfig.sampling_config(
                cases.choice([0.6, 0.9, 1.2]),
                cases.integer(16, 48),
                seed=cases.integer(0, 10_000),
                tree_verify=cases.boolean(),
                grammar="verilog",
            )
            result = decoder.generate_from_text(prompt, config)
            text = ""
            for token_id in result.token_ids:
                text += pieces[token_id]
                assert is_viable_prefix(text), text
            assert check_syntax(result.code).ok, result.code

        for_all(num_cases(6, 40), property_fn, seed=2025)


class TestConstrainedEvalbench:
    @pytest.fixture(scope="class")
    def mini_suite(self):
        suite = rtllm_suite()
        return ProblemSuite(name="RTLLM-mini", problems=[suite.get("half_adder"), suite.get("mux2to1_8")])

    def test_constrained_mode_report(self, tiny_pipeline, mini_suite):
        runner = EvaluationRunner(
            tiny_pipeline.decoder_for("ours"),
            samples_per_prompt=2,
            max_new_tokens=48,
            k_values=(1, 2),
            grammar="verilog",
        )
        report = runner.evaluate_suite(mini_suite, label="ours+grammar")
        assert report.grammar == "verilog"
        # Constrained decoding guarantees every sample parses.
        assert report.parse_pass_at_k[1] == 1.0
        assert report.parse_pass_rate == 1.0
        # Verified-token savings are reported and real on this workload.
        assert report.tokens_verified < report.tokens_verified_unpruned
        assert 0.0 < report.verified_savings_ratio < 1.0

    def test_unconstrained_report_totals_coincide(self, tiny_pipeline, mini_suite):
        runner = EvaluationRunner(
            tiny_pipeline.decoder_for("ours"), samples_per_prompt=1, max_new_tokens=32, k_values=(1,)
        )
        report = runner.evaluate_suite(mini_suite, label="ours")
        assert report.grammar is None
        assert report.tokens_verified == report.tokens_verified_unpruned
        assert report.closure_tokens == 0
        assert report.verified_savings_ratio == 0.0
