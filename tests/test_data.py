"""Tests for the dataset substrate: corpus, descriptions, minhash, refinement, alpaca."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.alpaca import build_alpaca_dataset, filter_by_length, subset_fractions
from repro.data.corpus import CorpusConfig, SyntheticVerilogCorpus
from repro.data.descriptions import describe_design
from repro.data.minhash import MinHashDeduplicator, estimated_jaccard, jaccard_similarity, minhash_signature
from repro.data.refinement import (
    RefinementConfig,
    comment_fraction,
    has_complete_module_structure,
    refine_corpus,
    split_into_modules,
)
from repro.verilog.fragments import FRAG
from repro.verilog.syntax import check_syntax


class TestCorpusGenerator:
    def test_generates_requested_count(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(num_items=30, seed=1))
        assert len(corpus.generate()) == 30

    def test_all_families_generate_valid_verilog(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(seed=2))
        for family in corpus.families():
            for index in range(3):
                item = corpus.generate_item(family, index)
                assert check_syntax(item.code).ok, f"{family}[{index}] failed to parse"

    def test_descriptions_mention_module_name(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(seed=3))
        item = corpus.generate_item("counter", 0)
        assert item.name in item.description

    def test_deterministic_for_same_seed(self):
        a = SyntheticVerilogCorpus(CorpusConfig(num_items=10, seed=5)).generate()
        b = SyntheticVerilogCorpus(CorpusConfig(num_items=10, seed=5)).generate()
        assert [x.code for x in a] == [y.code for y in b]

    def test_different_seeds_differ(self):
        a = SyntheticVerilogCorpus(CorpusConfig(num_items=10, seed=5)).generate()
        b = SyntheticVerilogCorpus(CorpusConfig(num_items=10, seed=6)).generate()
        assert [x.code for x in a] != [y.code for y in b]

    def test_unknown_family_raises(self):
        corpus = SyntheticVerilogCorpus()
        with pytest.raises(KeyError):
            corpus.generate_item("nonexistent")

    def test_corruption_injection(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(num_items=20, seed=1, corrupted_fraction=0.25))
        items = corpus.generate()
        assert len(items) == 25
        broken = [i for i in items if i.name.endswith("_broken")]
        assert broken
        assert any(not check_syntax(i.code).ok for i in broken)

    def test_duplicate_injection(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(num_items=20, seed=1, duplicate_fraction=0.2))
        items = corpus.generate()
        assert len(items) == 24
        assert any(i.name.endswith("_dup") for i in items)

    def test_family_restriction(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(num_items=8, seed=0, families=["adder", "mux"]))
        assert {i.family for i in corpus.generate()} == {"adder", "mux"}


class TestDescriptions:
    def test_known_family(self):
        text = describe_design("counter", "tick_counter", {"width": 8, "down": 0})
        assert "tick_counter" in text
        assert "8" in text

    def test_unknown_family_fallback(self):
        text = describe_design("mystery", "foo", {})
        assert "foo" in text

    def test_deterministic(self):
        a = describe_design("alu", "alu_core", {"width": 8, "num_ops": 8})
        b = describe_design("alu", "alu_core", {"width": 8, "num_ops": 8})
        assert a == b

    def test_parity_kind_field(self):
        odd = describe_design("parity", "p", {"width": 4, "odd": 1})
        even = describe_design("parity", "p", {"width": 4, "odd": 0})
        assert ("odd" in odd) and ("even" in even)


class TestMinHash:
    def test_identical_documents_full_similarity(self):
        text = "module m(input a); assign y = a; endmodule"
        assert jaccard_similarity(text, text) == 1.0

    def test_disjoint_documents_zero_similarity(self):
        assert jaccard_similarity("alpha beta gamma delta", "one two three four") == 0.0

    def test_empty_documents(self):
        assert jaccard_similarity("", "") == 1.0
        assert jaccard_similarity("a b c", "") == 0.0

    def test_signature_deterministic(self):
        text = "module m; wire x; endmodule"
        a = minhash_signature(text, 32)
        b = minhash_signature(text, 32)
        assert (a == b).all()

    def test_estimated_jaccard_close_to_exact(self):
        a = "module m(input clk, input rst, output reg [3:0] q); always @(posedge clk) q <= q + 1; endmodule"
        b = "module m(input clk, input rst, output reg [3:0] q); always @(posedge clk) q <= q + 2; endmodule"
        exact = jaccard_similarity(a, b)
        estimate = estimated_jaccard(minhash_signature(a, 128), minhash_signature(b, 128))
        assert abs(exact - estimate) < 0.25

    def test_deduplicator_drops_near_duplicates(self):
        base = "module m(input clk, input [7:0] d, output reg [7:0] q); always @(posedge clk) q <= d; endmodule"
        near = base.replace("    ", "  ")
        different = "module alu(input [3:0] a, input [3:0] b, output [3:0] y); assign y = a + b; endmodule"
        kept, duplicates = MinHashDeduplicator(threshold=0.7).deduplicate([base, near, different])
        assert 0 in kept and 2 in kept
        assert 1 not in kept
        assert duplicates == [(0, 1)]

    def test_deduplicator_keeps_distinct(self):
        docs = [
            "module a(input x, output y); assign y = x; endmodule",
            "module b(input clk, output reg [7:0] count); always @(posedge clk) count <= count + 1; endmodule",
            "module c(input [3:0] p, input [3:0] q, output [3:0] r); assign r = p & q; endmodule",
        ]
        kept, duplicates = MinHashDeduplicator(threshold=0.8).deduplicate(docs)
        assert kept == [0, 1, 2]
        assert duplicates == []

    def test_bands_must_divide_permutations(self):
        with pytest.raises(ValueError):
            MinHashDeduplicator(num_permutations=60, bands=16)

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="abcdefg hij;()", min_size=10, max_size=100))
    def test_self_similarity_is_one(self, text):
        """Property: every document estimates similarity 1.0 with itself."""
        signature = minhash_signature(text, 32)
        assert estimated_jaccard(signature, signature) == 1.0


class TestRefinement:
    def test_split_into_modules(self):
        source = "module a; endmodule\n// comment\nmodule b; endmodule\n"
        modules = split_into_modules(source)
        assert len(modules) == 2
        assert modules[0].startswith("module a")

    def test_split_ignores_trailing_garbage(self):
        modules = split_into_modules("module a; endmodule\nmodule broken_without_end")
        assert len(modules) == 1

    def test_structure_check(self):
        assert has_complete_module_structure("module m; endmodule")
        assert not has_complete_module_structure("module m; ")
        assert not has_complete_module_structure("// nothing")

    def test_comment_fraction(self):
        assert comment_fraction("// all comment\n") > 0.9
        assert comment_fraction("wire x;\n") == 0.0
        assert comment_fraction("") == 1.0

    def test_full_pipeline_keeps_clean_items(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(num_items=30, seed=4))
        report = refine_corpus(corpus.generate())
        assert report.kept > 0
        assert report.kept <= report.after_module_split
        for item in report.items:
            assert check_syntax(item.code).ok
            assert FRAG in item.code_with_frag

    def test_pipeline_removes_corrupted_items(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(num_items=20, seed=4, corrupted_fraction=0.3))
        report = refine_corpus(corpus.generate())
        assert report.removed_syntax + report.removed_structure_filter + report.removed_comment_filter > 0

    def test_pipeline_removes_duplicates(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(num_items=20, seed=4, duplicate_fraction=0.3))
        report = refine_corpus(corpus.generate())
        assert report.removed_duplicates > 0

    def test_frag_markers_optional(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(num_items=5, seed=1))
        report = refine_corpus(corpus.generate(), RefinementConfig(add_frag_markers=False))
        assert all(item.code_with_frag == item.code for item in report.items)

    def test_report_totals_consistent(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(num_items=25, seed=9, corrupted_fraction=0.2, duplicate_fraction=0.2))
        report = refine_corpus(corpus.generate())
        removed = (
            report.removed_structure_filter
            + report.removed_comment_filter
            + report.removed_duplicates
            + report.removed_syntax
        )
        assert report.kept + removed == report.after_module_split


class TestAlpaca:
    def _examples(self, count=12):
        corpus = SyntheticVerilogCorpus(CorpusConfig(num_items=count, seed=2))
        report = refine_corpus(corpus.generate())
        return build_alpaca_dataset(report.items)

    def test_build_dataset_fields(self):
        examples = self._examples()
        assert examples
        example = examples[0]
        assert example.instruction
        assert example.output
        assert FRAG in example.output_with_frag
        assert example.prompt_text().startswith("Please act as a professional Verilog designer.")

    def test_max_items_limit(self):
        corpus = SyntheticVerilogCorpus(CorpusConfig(num_items=20, seed=2))
        report = refine_corpus(corpus.generate())
        examples = build_alpaca_dataset(report.items, max_items=3)
        assert len(examples) == 3

    def test_subset_fractions_nested(self):
        examples = self._examples(30)
        subsets = subset_fractions(examples, fractions=(0.25, 0.5, 1.0), seed=1)
        quarter = {e.name for e in subsets[0.25]}
        half = {e.name for e in subsets[0.5]}
        full = {e.name for e in subsets[1.0]}
        assert quarter <= half <= full
        assert len(subsets[1.0]) == len(examples)

    def test_subset_sizes(self):
        examples = self._examples(30)
        subsets = subset_fractions(examples, fractions=(0.5,), seed=0)
        assert len(subsets[0.5]) == max(1, round(0.5 * len(examples)))

    def test_filter_by_length(self):
        from repro.tokenizer.bpe import BPETokenizer

        examples = self._examples(10)
        tokenizer = BPETokenizer()
        tokenizer.train([e.prompt_text() + e.output_with_frag for e in examples], vocab_size=300)
        kept_all = filter_by_length(examples, tokenizer, max_tokens=10_000)
        kept_none = filter_by_length(examples, tokenizer, max_tokens=5)
        assert len(kept_all) == len(examples)
        assert kept_none == []
