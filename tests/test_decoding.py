"""Tests for the speculative decoding loop (integration with the tiny pipeline)."""

import pytest

from repro.core.decoding import DecodingStrategy, SpeculativeDecoder, StepRecord
from repro.models.generation import GenerationConfig
from repro.verilog.fragments import FRAG


@pytest.fixture(scope="module")
def decoders(tiny_pipeline):
    return {
        "ours": tiny_pipeline.decoder_for("ours"),
        "medusa": tiny_pipeline.decoder_for("medusa"),
        "ntp": tiny_pipeline.decoder_for("ntp"),
    }


@pytest.fixture(scope="module")
def sample_prompt(tiny_pipeline):
    return tiny_pipeline.examples[0].prompt_text()


class TestNTPDecoding:
    def test_one_token_per_step(self, decoders, sample_prompt):
        result = decoders["ntp"].generate_from_text(sample_prompt, GenerationConfig.greedy_config(12))
        assert result.steps == result.tokens_generated
        assert all(r.committed == 1 for r in result.step_records)

    def test_respects_max_new_tokens(self, decoders, sample_prompt):
        result = decoders["ntp"].generate_from_text(sample_prompt, GenerationConfig.greedy_config(5))
        assert result.tokens_generated <= 5

    def test_greedy_deterministic(self, decoders, sample_prompt):
        first = decoders["ntp"].generate_from_text(sample_prompt, GenerationConfig.greedy_config(10))
        second = decoders["ntp"].generate_from_text(sample_prompt, GenerationConfig.greedy_config(10))
        assert first.token_ids == second.token_ids

    def test_sampling_seed_deterministic(self, decoders, sample_prompt):
        config = GenerationConfig.sampling_config(0.8, 10, seed=11)
        first = decoders["ntp"].generate_from_text(sample_prompt, config)
        second = decoders["ntp"].generate_from_text(sample_prompt, config)
        assert first.token_ids == second.token_ids


class TestSpeculativeDecoding:
    def test_fewer_steps_than_tokens(self, decoders, sample_prompt):
        result = decoders["ours"].generate_from_text(sample_prompt, GenerationConfig.greedy_config(40))
        assert result.steps <= result.tokens_generated
        assert result.tokens_per_step >= 1.0

    def test_medusa_also_speculative(self, decoders, sample_prompt):
        result = decoders["medusa"].generate_from_text(sample_prompt, GenerationConfig.greedy_config(40))
        assert result.steps <= result.tokens_generated

    def test_ours_step_records_end_at_boundary_or_single_token(self, decoders, sample_prompt):
        decoder = decoders["ours"]
        result = decoder.generate_from_text(sample_prompt, GenerationConfig.greedy_config(40))
        frag_id = decoder.frag_id
        eos_id = decoder.eos_id
        position = 0
        for record in result.step_records:
            committed = result.token_ids[position : position + record.committed]
            position += record.committed
            if len(committed) > 1:
                # Multi-token commits must close a fragment (or end the sequence).
                assert committed[-1] in (frag_id, eos_id)

    def test_respects_token_budget(self, decoders, sample_prompt):
        result = decoders["ours"].generate_from_text(sample_prompt, GenerationConfig.greedy_config(16))
        assert result.tokens_generated <= 16 + decoders["ours"].model.num_medusa_heads

    def test_code_property_strips_frag(self, decoders, sample_prompt):
        result = decoders["ours"].generate_from_text(sample_prompt, GenerationConfig.greedy_config(30))
        assert FRAG not in result.code
        assert FRAG in result.text or result.text == result.code

    def test_tokens_per_second_positive(self, decoders, sample_prompt):
        result = decoders["ours"].generate_from_text(sample_prompt, GenerationConfig.greedy_config(10))
        assert result.tokens_per_second > 0
        assert result.wall_time_seconds > 0

    def test_stops_on_eos(self, decoders, tiny_pipeline):
        # Force EOS to be the most likely token by prompting with a complete example output.
        decoder = decoders["ours"]
        example = tiny_pipeline.examples[0]
        prompt = example.prompt_text() + example.output_with_frag
        result = decoder.generate_from_text(prompt, GenerationConfig.greedy_config(60))
        if result.stopped_by_eos:
            assert result.token_ids.count(decoder.eos_id) >= 1

    def test_strategy_recorded(self, decoders):
        assert decoders["ours"].strategy is DecodingStrategy.OURS
        assert decoders["medusa"].strategy is DecodingStrategy.MEDUSA
        assert decoders["ntp"].strategy is DecodingStrategy.NTP

    def test_max_speculative_heads_clamped(self, tiny_pipeline):
        model = tiny_pipeline.models["ours"]
        decoder = SpeculativeDecoder(model, tiny_pipeline.tokenizer, max_speculative_heads=100)
        assert decoder.max_speculative_heads == model.num_medusa_heads

    def test_generate_accepts_raw_ids(self, decoders, tiny_pipeline, sample_prompt):
        ids = tiny_pipeline.tokenizer.encode(sample_prompt, add_bos=True)
        result = decoders["ours"].generate(ids, GenerationConfig.greedy_config(8))
        assert result.tokens_generated > 0


class TestStepAccounting:
    def test_ours_uses_fewer_steps_than_ntp(self, decoders, sample_prompt):
        """The core speed claim: speculative decoding commits >1 token/step on average."""
        budget = 40
        ours = decoders["ours"].generate_from_text(sample_prompt, GenerationConfig.greedy_config(budget))
        ntp = decoders["ntp"].generate_from_text(sample_prompt, GenerationConfig.greedy_config(budget))
        tokens = min(ours.tokens_generated, ntp.tokens_generated)
        assert tokens > 0
        # Normalise to the same number of tokens: steps per token must be lower for ours.
        assert ours.steps / ours.tokens_generated <= ntp.steps / ntp.tokens_generated

    def test_step_record_fields(self):
        record = StepRecord(proposed=5, accepted=3, committed=2, ends_at_boundary=True)
        assert record.proposed >= record.accepted >= record.committed - 1
