"""Tests for the evaluation benchmarks and metrics."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.evalbench.designs import adder, counter, data_register, mux2
from repro.evalbench.functional import check_design_functional
from repro.evalbench.passk import pass_at_k, pass_at_k_from_counts, pass_at_k_single, pass_rate
from repro.evalbench.problems import Problem
from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.syntax_eval import check_design_compiles
from repro.evalbench.vgen import vgen_suite


class TestPassAtK:
    def test_all_passing(self):
        assert pass_at_k_single(20, 20, 1) == 1.0

    def test_none_passing(self):
        assert pass_at_k_single(20, 0, 10) == 0.0

    def test_known_value(self):
        # n=4, c=2, k=2: 1 - C(2,2)/C(4,2) = 1 - 1/6
        assert pass_at_k_single(4, 2, 2) == pytest.approx(1 - 1 / 6)

    def test_k_larger_than_n_clamped(self):
        assert pass_at_k_single(3, 1, 10) == 1.0

    def test_invalid_counts_raise(self):
        with pytest.raises(ValueError):
            pass_at_k_single(3, 4, 1)
        with pytest.raises(ValueError):
            pass_at_k_single(3, 1, 0)

    def test_zero_samples(self):
        assert pass_at_k_single(0, 0, 5) == 0.0

    def test_mean_over_prompts(self):
        counts = [(10, 10), (10, 0)]
        assert pass_at_k_from_counts(counts, 1) == pytest.approx(0.5)

    def test_from_flags(self):
        results = [[True] * 5, [False] * 5]
        assert pass_at_k(results, 1) == pytest.approx(0.5)

    def test_empty_input(self):
        assert pass_at_k([], 5) == 0.0
        assert pass_at_k_from_counts([], 5) == 0.0

    def test_pass_rate(self):
        results = [[False, True], [False, False], [True, True]]
        assert pass_rate(results) == pytest.approx(2 / 3)

    def test_pass_rate_empty(self):
        assert pass_rate([]) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 30), st.integers(0, 30), st.integers(1, 15))
    def test_pass_at_k_bounds_and_monotonicity(self, n, c, k):
        """Property: 0 <= pass@k <= 1 and pass@k is nondecreasing in k."""
        c = min(c, n)
        value = pass_at_k_single(n, c, k)
        assert 0.0 <= value <= 1.0
        assert pass_at_k_single(n, c, min(k + 1, n)) >= value - 1e-12

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 25), st.integers(0, 25))
    def test_pass_at_1_equals_ratio(self, n, c):
        """Property: pass@1 is exactly c/n."""
        c = min(c, n)
        assert pass_at_k_single(n, c, 1) == pytest.approx(c / n)


class TestProblemSuites:
    def test_rtllm_has_29_problems(self):
        assert len(rtllm_suite()) == 29

    def test_vgen_has_17_problems(self):
        assert len(vgen_suite()) == 17

    def test_problem_names_unique(self):
        for suite in (rtllm_suite(), vgen_suite()):
            names = [p.name for p in suite]
            assert len(names) == len(set(names))

    def test_vgen_prompts_contain_module_header(self):
        for problem in vgen_suite():
            assert f"module {problem.module_name}" in problem.prompt

    def test_rtllm_prompts_are_prose(self):
        for problem in rtllm_suite():
            assert problem.module_name in problem.prompt
            assert "Please act as a professional Verilog designer." in problem.prompt

    def test_suite_lookup(self):
        suite = rtllm_suite()
        assert suite.get("alu_8bit") is not None
        assert suite.get("nonexistent") is None
        assert len(suite.prompts()) == len(suite)

    def test_suite_indexing(self):
        suite = vgen_suite()
        assert isinstance(suite[0], Problem)


@pytest.mark.parametrize("problem", list(rtllm_suite()) + list(vgen_suite()), ids=lambda p: p.name)
def test_every_reference_design_passes_its_testbench(problem):
    """Oracle check: each benchmark's golden design compiles and passes functionally."""
    syntax = check_design_compiles(problem.reference, problem.testbench)
    assert syntax.compiles, syntax.errors
    functional = check_design_functional(problem.reference, problem)
    assert functional.passed, functional.output or functional.errors


class TestGraders:
    def test_wrong_design_fails_functionally(self):
        prompt, reference, testbench = mux2("mux2to1", width=8)
        problem = Problem(name="x", prompt=prompt, reference=reference, testbench=testbench, module_name="mux2to1")
        wrong = reference.replace("sel ? b : a", "sel ? a : b")
        result = check_design_functional(wrong, problem)
        assert result.compiled and not result.passed

    def test_unparseable_design_fails_syntax(self):
        prompt, reference, testbench = adder("adder_8bit")
        result = check_design_compiles("module broken(input a;", testbench)
        assert not result.parses and not result.compiles

    def test_wrong_module_name_fails_compile(self):
        prompt, reference, testbench = counter("up_counter")
        renamed = reference.replace("module up_counter", "module different_name")
        result = check_design_compiles(renamed, testbench)
        assert result.parses and not result.compiles

    def test_design_alone_compiles(self):
        _, reference, _ = data_register()
        assert check_design_compiles(reference).compiles

    def test_functional_check_counts_reference_as_pass(self):
        prompt, reference, testbench = data_register()
        problem = Problem(name="dr", prompt=prompt, reference=reference, testbench=testbench, module_name="data_register")
        assert check_design_functional(reference, problem).passed
