"""Tests for expression evaluation over four-state values."""

import pytest

from repro.sim.expr import EvaluationError, ExpressionEvaluator
from repro.sim.values import FourState
from repro.verilog.parser import Parser


class _DictScope:
    """Minimal Scope implementation backed by a dictionary."""

    def __init__(self, signals=None, functions=None):
        self.signals = signals or {}
        self.functions = functions or {}

    def read_signal(self, name):
        if name not in self.signals:
            raise EvaluationError(f"unknown signal {name}")
        return self.signals[name]

    def signal_width(self, name):
        return self.signals[name].width

    def call_function(self, name, args):
        if name in self.functions:
            return self.functions[name](args)
        raise EvaluationError(f"unknown function {name}")


def _evaluate(text, signals=None, ctx=None):
    parser = Parser(f"module m; wire x; assign x = {text}; endmodule")
    module = parser.parse_source().modules[0]
    assign = [i for i in module.items if hasattr(i, "assignments")][0]
    expr = assign.assignments[0][1]
    evaluator = ExpressionEvaluator(_DictScope(signals))
    return evaluator.evaluate(expr, ctx)


class TestLiteralsAndIdentifiers:
    def test_sized_literal(self):
        assert _evaluate("8'hA5").to_int() == 0xA5

    def test_decimal_literal(self):
        assert _evaluate("42").to_int() == 42

    def test_identifier_lookup(self):
        signals = {"a": FourState.from_int(7, width=8)}
        assert _evaluate("a", signals).to_int() == 7

    def test_unknown_identifier_raises(self):
        with pytest.raises(EvaluationError):
            _evaluate("missing")

    def test_string_literal(self):
        value = _evaluate('"AB"')
        assert value.to_int() == (ord("A") << 8) | ord("B")


class TestArithmetic:
    def test_addition(self):
        assert _evaluate("3 + 4").to_int() == 7

    def test_addition_with_context_width_keeps_carry(self):
        signals = {"a": FourState.from_int(0xFF, width=8), "b": FourState.from_int(1, width=8)}
        assert _evaluate("a + b", signals, ctx=9).to_int() == 0x100

    def test_addition_without_context_wraps(self):
        signals = {"a": FourState.from_int(0xFF, width=8), "b": FourState.from_int(1, width=8)}
        assert _evaluate("a + b", signals).to_int() == 0

    def test_subtraction_wraps(self):
        signals = {"a": FourState.from_int(0, width=8), "b": FourState.from_int(1, width=8)}
        assert _evaluate("a - b", signals).to_int() == 0xFF

    def test_multiplication(self):
        assert _evaluate("6 * 7").to_int() == 42

    def test_division(self):
        assert _evaluate("20 / 3").to_int() == 6

    def test_division_by_zero_is_zero(self):
        assert _evaluate("5 / 0").to_int() == 0

    def test_modulo(self):
        assert _evaluate("20 % 3").to_int() == 2

    def test_power(self):
        assert _evaluate("2 ** 10").to_int() == 1024

    def test_unary_minus(self):
        value = _evaluate("-1")
        assert value.to_signed_int() == -1

    def test_x_propagation_in_arithmetic(self):
        signals = {"a": FourState.unknown_value(8), "b": FourState.from_int(1, width=8)}
        assert not _evaluate("a + b", signals).is_fully_known


class TestBitwiseAndLogical:
    def test_and_or_xor(self):
        assert _evaluate("4'b1100 & 4'b1010").to_int() == 0b1000
        assert _evaluate("4'b1100 | 4'b1010").to_int() == 0b1110
        assert _evaluate("4'b1100 ^ 4'b1010").to_int() == 0b0110

    def test_bitwise_not(self):
        assert _evaluate("~4'b1010").to_int() == 0b0101

    def test_logical_not(self):
        assert _evaluate("!4'b0000").to_int() == 1
        assert _evaluate("!4'b0100").to_int() == 0

    def test_logical_and_short_circuit_with_x(self):
        signals = {"a": FourState.unknown_value(1)}
        # 0 && x is definitively 0.
        assert _evaluate("1'b0 && a", signals).to_int() == 0
        # 1 && x is unknown.
        assert not _evaluate("1'b1 && a", signals).is_fully_known

    def test_logical_or_short_circuit_with_x(self):
        signals = {"a": FourState.unknown_value(1)}
        assert _evaluate("1'b1 || a", signals).to_int() == 1
        assert not _evaluate("1'b0 || a", signals).is_fully_known

    def test_known_zero_and_dominates_x(self):
        signals = {"a": FourState.unknown_value(4)}
        value = _evaluate("a & 4'b0000", signals)
        assert value.to_int() == 0
        assert value.is_fully_known

    def test_known_one_or_dominates_x(self):
        signals = {"a": FourState.unknown_value(4)}
        value = _evaluate("a | 4'b1111", signals)
        assert value.to_int() == 0b1111
        assert value.is_fully_known

    def test_reduction_operators(self):
        assert _evaluate("&4'b1111").to_int() == 1
        assert _evaluate("&4'b1101").to_int() == 0
        assert _evaluate("|4'b0000").to_int() == 0
        assert _evaluate("^4'b1011").to_int() == 1
        assert _evaluate("~&4'b1111").to_int() == 0
        assert _evaluate("~|4'b0000").to_int() == 1


class TestComparisonsAndShifts:
    def test_equality(self):
        assert _evaluate("5 == 5").to_int() == 1
        assert _evaluate("5 != 5").to_int() == 0

    def test_relational(self):
        assert _evaluate("3 < 5").to_int() == 1
        assert _evaluate("5 <= 5").to_int() == 1
        assert _evaluate("6 > 7").to_int() == 0
        assert _evaluate("7 >= 7").to_int() == 1

    def test_comparison_with_x_is_unknown(self):
        signals = {"a": FourState.unknown_value(4)}
        assert not _evaluate("a == 4'd2", signals).is_fully_known

    def test_case_equality_with_x(self):
        signals = {"a": FourState.unknown_value(4)}
        assert _evaluate("a === a", signals).to_int() == 1

    def test_case_inequality(self):
        assert _evaluate("4'b1010 !== 4'b1010").to_int() == 0

    def test_shifts(self):
        assert _evaluate("4'b0001 << 2").to_int() == 4
        assert _evaluate("4'b1000 >> 3").to_int() == 1

    def test_arithmetic_shift_right_signed(self):
        signals = {"a": FourState.from_int(0b1000, width=4, signed=True)}
        assert _evaluate("a >>> 1", signals).to_bit_string() == "1100"


class TestStructuredExpressions:
    def test_ternary_true_branch(self):
        assert _evaluate("1 ? 8'd5 : 8'd9").to_int() == 5

    def test_ternary_false_branch(self):
        assert _evaluate("0 ? 8'd5 : 8'd9").to_int() == 9

    def test_ternary_unknown_condition(self):
        signals = {"s": FourState.unknown_value(1)}
        assert not _evaluate("s ? 8'd5 : 8'd9", signals).is_fully_known

    def test_concatenation(self):
        assert _evaluate("{2'b10, 2'b01}").to_int() == 0b1001

    def test_replication(self):
        assert _evaluate("{3{2'b10}}").to_int() == 0b101010

    def test_bit_select(self):
        signals = {"a": FourState.from_int(0b1010, width=4)}
        assert _evaluate("a[1]", signals).to_int() == 1
        assert _evaluate("a[0]", signals).to_int() == 0

    def test_part_select(self):
        signals = {"a": FourState.from_int(0xAB, width=8)}
        assert _evaluate("a[7:4]", signals).to_int() == 0xA

    def test_indexed_part_select(self):
        signals = {"a": FourState.from_int(0xAB, width=8), "b": FourState.from_int(4, width=3)}
        assert _evaluate("a[b +: 4]", signals).to_int() == 0xA

    def test_bit_select_unknown_index(self):
        signals = {"a": FourState.from_int(0b1010, width=4), "i": FourState.unknown_value(2)}
        assert not _evaluate("a[i]", signals).is_fully_known

    def test_function_call_dispatch(self):
        scope = _DictScope(functions={"double": lambda args: FourState.from_int(args[0].to_int() * 2, width=16)})
        parser = Parser("module m; wire x; assign x = double(21); endmodule")
        module = parser.parse_source().modules[0]
        expr = [i for i in module.items if hasattr(i, "assignments")][0].assignments[0][1]
        assert ExpressionEvaluator(scope).evaluate(expr).to_int() == 42

    def test_evaluate_int_requires_known(self):
        evaluator = ExpressionEvaluator(_DictScope({"a": FourState.unknown_value(4)}))
        parser = Parser("module m; wire x; assign x = a; endmodule")
        expr = [i for i in parser.parse_source().modules[0].items if hasattr(i, "assignments")][0].assignments[0][1]
        with pytest.raises(EvaluationError):
            evaluator.evaluate_int(expr)
