"""Tests for the per-layer KV cache and incremental-forward equivalence."""

import numpy as np
import pytest

from repro.models.decoder_lm import DecoderConfig, TinyCodeLlama
from repro.models.encdec_lm import EncDecConfig, TinyCodeT5p
from repro.models.medusa import MedusaLM
from repro.nn.kv_cache import KVCache

ATOL = 1e-5


@pytest.fixture(scope="module")
def decoder_lm() -> MedusaLM:
    backbone = TinyCodeLlama(
        DecoderConfig(vocab_size=64, dim=32, num_layers=2, num_heads=4, max_seq_len=96, seed=3)
    )
    return MedusaLM(backbone, vocab_size=64, num_medusa_heads=3, seed=3)


@pytest.fixture(scope="module")
def encdec_lm() -> MedusaLM:
    backbone = TinyCodeT5p(
        EncDecConfig(
            vocab_size=64, dim=32, num_encoder_layers=2, num_decoder_layers=2, num_heads=4, max_seq_len=96, seed=4
        )
    )
    return MedusaLM(backbone, vocab_size=64, num_medusa_heads=2, seed=4)


class TestKVCacheOps:
    def _cache(self, batch=1) -> KVCache:
        return KVCache(num_layers=2, num_heads=4, head_dim=8, capacity=16, batch=batch)

    def test_append_grows_length(self):
        cache = self._cache()
        k = np.ones((1, 4, 3, 8), dtype=np.float32)
        full_k, full_v = cache.layers[0].append(k, 2 * k)
        assert cache.layers[0].length == 3
        assert full_k.shape == (1, 4, 3, 8)
        assert np.all(full_v == 2.0)

    def test_append_overflow_raises(self):
        cache = self._cache()
        k = np.zeros((1, 4, 17, 8), dtype=np.float32)
        with pytest.raises(ValueError, match="overflow"):
            cache.layers[0].append(k, k)

    def test_append_batch_mismatch_raises(self):
        cache = self._cache()
        k = np.zeros((2, 4, 1, 8), dtype=np.float32)
        with pytest.raises(ValueError, match="batch"):
            cache.layers[0].append(k, k)

    def test_truncate_rolls_back_every_layer(self):
        cache = self._cache()
        k = np.zeros((1, 4, 5, 8), dtype=np.float32)
        for layer in cache.layers:
            layer.append(k, k)
        cache.truncate(2)
        assert all(layer.length == 2 for layer in cache.layers)
        cache.truncate(10)  # beyond current length: no-op
        assert cache.length == 2
        with pytest.raises(ValueError):
            cache.truncate(-1)

    def test_expand_batch_tiles_rows(self):
        cache = self._cache()
        k = np.arange(1 * 4 * 2 * 8, dtype=np.float32).reshape(1, 4, 2, 8)
        cache.layers[0].append(k, k)
        cache.layers[1].append(k, k)
        cache.expand_batch(3)
        assert cache.batch == 3
        # Only the filled prefix is defined; capacity tails stay uninitialised.
        assert np.array_equal(cache.layers[0].k[0, :, :2], k[0])
        assert np.array_equal(cache.layers[0].k[2, :, :2], k[0])
        with pytest.raises(ValueError, match="batch-1"):
            cache.expand_batch(5)

    def test_keep_row_collapses_batch(self):
        cache = self._cache()
        k = np.zeros((1, 4, 1, 8), dtype=np.float32)
        for layer in cache.layers:
            layer.append(k, k)
        cache.expand_batch(3)
        marker = np.full((3, 4, 2, 8), 7.0, dtype=np.float32)
        marker[1] = 9.0
        for layer in cache.layers:
            layer.append(marker, marker)
        cache.keep_row(1)
        assert cache.batch == 1
        assert np.all(cache.layers[0].k[0, :, 1:3] == 9.0)
        with pytest.raises(IndexError):
            cache.keep_row(4)

    # -- edge cases not exercised by the decoding loops ----------------------

    def test_truncate_to_zero_then_reuse(self):
        cache = self._cache()
        k = np.ones((1, 4, 5, 8), dtype=np.float32)
        for layer in cache.layers:
            layer.append(k, k)
        cache.truncate(0)
        assert cache.length == 0
        assert cache.lengths.tolist() == [0]
        # The cache is reusable after a full rollback.
        fresh = np.full((1, 4, 2, 8), 3.0, dtype=np.float32)
        full_k, _ = cache.layers[0].append(fresh, fresh)
        assert full_k.shape[2] == 2
        assert np.all(full_k == 3.0)

    def test_expand_batch_after_truncate(self):
        cache = self._cache()
        k = np.arange(1 * 4 * 6 * 8, dtype=np.float32).reshape(1, 4, 6, 8)
        for layer in cache.layers:
            layer.append(k, k)
        cache.truncate(3)
        cache.expand_batch(4)
        assert cache.batch == 4
        assert cache.lengths.tolist() == [3, 3, 3, 3]
        for row in range(4):
            np.testing.assert_array_equal(cache.layers[0].k[row, :, :3], k[0, :, :3])

    def test_keep_row_on_batch_one_is_identity(self):
        cache = self._cache()
        k = np.full((1, 4, 3, 8), 5.0, dtype=np.float32)
        for layer in cache.layers:
            layer.append(k, k)
        cache.keep_row(0)
        assert cache.batch == 1
        assert cache.length == 3
        assert np.all(cache.layers[0].k[0, :, :3] == 5.0)

    def test_expand_batch_noop_when_already_that_batch(self):
        cache = self._cache()
        cache.expand_batch(1)
        assert cache.batch == 1


class TestRaggedServingOps:
    """Multi-request (ragged) cache operations used by the serving engine."""

    def _cache(self, batch=1, capacity=16) -> KVCache:
        return KVCache(num_layers=2, num_heads=4, head_dim=8, capacity=capacity, batch=batch)

    def _filled(self, fill: float, positions: int, batch=1) -> KVCache:
        cache = self._cache(batch=batch)
        block = np.full((batch, 4, positions, 8), fill, dtype=np.float32)
        for layer in cache.layers:
            layer.append(block, block)
        return cache

    def test_concat_preserves_per_row_lengths(self):
        a = self._filled(1.0, positions=2)
        b = self._filled(2.0, positions=5)
        merged = KVCache.concat([a, b])
        assert merged.batch == 2
        assert merged.lengths.tolist() == [2, 5]
        assert np.all(merged.layers[0].k[0, :, :2] == 1.0)
        assert np.all(merged.layers[1].k[1, :, :5] == 2.0)
        # Region past a short row's own length is zero (finite), never garbage.
        assert np.all(merged.layers[0].k[0, :, 2:5] == 0.0)

    def test_concat_rejects_mismatched_geometry(self):
        a = self._cache()
        other = KVCache(num_layers=2, num_heads=2, head_dim=8, capacity=16)
        with pytest.raises(ValueError, match="geometry"):
            KVCache.concat([a, other])
        with pytest.raises(ValueError, match="at least one"):
            KVCache.concat([])

    def test_concat_rejects_mixed_cross_attention(self):
        with_cross = self._cache()
        cross = np.ones((1, 4, 3, 8), dtype=np.float32)
        for layer in with_cross.layers:
            layer.set_cross(cross, cross)
        without_cross = self._cache()
        with pytest.raises(ValueError, match="cross-attention"):
            KVCache.concat([with_cross, without_cross])

    def test_ragged_append_lands_at_per_row_offsets(self):
        merged = KVCache.concat([self._filled(1.0, 2), self._filled(2.0, 4)])
        step = np.full((2, 4, 1, 8), 9.0, dtype=np.float32)
        full_k, _ = merged.layers[0].append(step, step)
        assert merged.layers[0].lengths.tolist() == [3, 5]
        assert np.all(merged.layers[0].k[0, :, 2] == 9.0)
        assert np.all(merged.layers[0].k[1, :, 4] == 9.0)
        # The returned view spans the longest row.
        assert full_k.shape[2] == 5

    def test_append_widths_keep_padding_out(self):
        merged = KVCache.concat([self._filled(1.0, 2), self._filled(2.0, 4)])
        window = np.full((2, 4, 3, 8), 9.0, dtype=np.float32)
        merged.set_append_widths([1, 3])
        try:
            merged.layers[0].append(window, window)
        finally:
            merged.set_append_widths(None)
        assert merged.layers[0].lengths.tolist() == [3, 7]
        assert np.all(merged.layers[0].k[0, :, 2] == 9.0)
        # Row 0's padded window positions were not stored.
        assert np.all(merged.layers[0].k[0, :, 3:5] == 0.0)

    def test_repeat_rows_interleaves_per_row_counts(self):
        merged = KVCache.concat([self._filled(1.0, 2), self._filled(2.0, 4)])
        tiled = merged.repeat_rows([2, 3])
        assert tiled.batch == 5
        assert tiled.lengths.tolist() == [2, 2, 4, 4, 4]
        assert np.all(tiled.layers[0].k[1, :, :2] == 1.0)
        assert np.all(tiled.layers[0].k[2, :, :4] == 2.0)
        # Source is untouched.
        assert merged.batch == 2

    def test_repeat_rows_trimmed_capacity(self):
        merged = KVCache.concat([self._filled(1.0, 2), self._filled(2.0, 4)])
        tiled = merged.repeat_rows(2, capacity=6)
        assert tiled.capacity == 6
        assert tiled.layers[0].k.shape[2] == 6
        with pytest.raises(ValueError, match="capacity"):
            merged.repeat_rows(2, capacity=3)  # below the longest row

    def test_select_rows_gathers_and_drops(self):
        merged = KVCache.concat([self._filled(1.0, 2), self._filled(2.0, 3), self._filled(3.0, 4)])
        merged.select_rows([2, 0])
        assert merged.batch == 2
        assert merged.lengths.tolist() == [4, 2]
        assert np.all(merged.layers[0].k[0, :, :4] == 3.0)
        assert np.all(merged.layers[0].k[1, :, :2] == 1.0)
        with pytest.raises(IndexError):
            merged.select_rows([5])

    def test_select_rows_to_empty(self):
        merged = KVCache.concat([self._filled(1.0, 2)])
        merged.select_rows([])
        assert merged.batch == 0
        assert merged.length == 0

    def test_truncate_rows_per_row(self):
        merged = KVCache.concat([self._filled(1.0, 4), self._filled(2.0, 6)])
        merged.truncate_rows([2, 5])
        assert merged.lengths.tolist() == [2, 5]
        merged.truncate_rows([10, 1])  # beyond current length: per-row no-op
        assert merged.lengths.tolist() == [2, 1]
        with pytest.raises(ValueError):
            merged.truncate_rows([1])  # wrong shape
        with pytest.raises(ValueError):
            merged.truncate_rows([-1, 0])

    def test_compact_rows_fuses_gather_and_truncate(self):
        merged = KVCache.concat([self._filled(1.0, 3), self._filled(2.0, 5)])
        tiled = merged.repeat_rows(2)  # rows: [0,0,1,1]
        compacted = tiled.compact_rows([1, 3], [2, 4])
        assert compacted.batch == 2
        assert compacted.lengths.tolist() == [2, 4]
        assert np.all(compacted.layers[0].k[0, :, :2] == 1.0)
        assert np.all(compacted.layers[0].k[1, :, :4] == 2.0)
        with pytest.raises(IndexError):
            tiled.compact_rows([9], [1])

    def test_overflow_respects_per_row_lengths(self):
        merged = KVCache.concat([self._filled(1.0, 2), self._filled(2.0, 15)])
        step = np.full((2, 4, 2, 8), 9.0, dtype=np.float32)
        with pytest.raises(ValueError, match="overflow"):
            merged.layers[0].append(step, step)  # row 1 would exceed capacity 16


class TestIncrementalEquivalence:
    """Cached incremental logits must equal full-recompute logits."""

    def test_decoder_only_prefill_then_steps(self, decoder_lm):
        ids = np.arange(1, 25) % 64
        full_base, full_heads = decoder_lm.forward(ids)
        cache = decoder_lm.new_cache()
        part_base, _ = decoder_lm.forward(ids[:10], cache=cache)
        np.testing.assert_allclose(part_base, full_base[:, :10], atol=ATOL)
        # Feed the rest one token at a time.
        for t in range(10, len(ids)):
            step_base, step_heads = decoder_lm.forward(ids[t : t + 1], cache=cache)
            np.testing.assert_allclose(step_base[0, 0], full_base[0, t], atol=ATOL)
            for head_full, head_step in zip(full_heads, step_heads):
                np.testing.assert_allclose(head_step[0, 0], head_full[0, t], atol=ATOL)
        assert cache.length == len(ids)

    def test_encoder_decoder_prefill_then_steps(self, encdec_lm):
        enc_ids = np.arange(2, 14) % 64
        dec_ids = np.arange(5, 23) % 64
        full_base, full_heads = encdec_lm.forward(dec_ids, enc_ids)
        encdec_lm.encode_prompt(enc_ids)
        cache = encdec_lm.new_cache()
        part_base, _ = encdec_lm.forward(dec_ids[:6], cache=cache)
        np.testing.assert_allclose(part_base, full_base[:, :6], atol=ATOL)
        for t in range(6, len(dec_ids)):
            step_base, step_heads = encdec_lm.forward(dec_ids[t : t + 1], cache=cache)
            np.testing.assert_allclose(step_base[0, 0], full_base[0, t], atol=ATOL)
            for head_full, head_step in zip(full_heads, step_heads):
                np.testing.assert_allclose(head_step[0, 0], head_full[0, t], atol=ATOL)

    def test_rollback_after_rejected_tokens(self, decoder_lm):
        """Junk appended then truncated away must not perturb later logits."""
        ids = np.arange(3, 33) % 64
        full_base, _ = decoder_lm.forward(ids)
        cache = decoder_lm.new_cache()
        decoder_lm.forward(ids[:12], cache=cache)
        # Speculate six wrong tokens, then roll back.
        junk = (ids[12:18] + 17) % 64
        decoder_lm.forward(junk, cache=cache)
        cache.truncate(12)
        resumed_base, _ = decoder_lm.forward(ids[12:], cache=cache)
        np.testing.assert_allclose(resumed_base, full_base[:, 12:], atol=ATOL)

    def test_batched_verification_roundtrip(self, decoder_lm):
        """expand_batch -> batched verify -> keep_row -> truncate matches full recompute."""
        ids = np.arange(7, 27) % 64
        full_base, _ = decoder_lm.forward(ids)
        cache = decoder_lm.new_cache()
        decoder_lm.forward(ids[:14], cache=cache)
        # Three candidate continuations; row 1 is the "accepted" true one.
        true_tail = ids[14:18]
        rows = np.stack([(true_tail + 5) % 64, true_tail, (true_tail + 9) % 64])
        cache.expand_batch(3)
        batch_base, _ = decoder_lm.forward(rows, cache=cache)
        np.testing.assert_allclose(batch_base[1], full_base[0, 14:18], atol=ATOL)
        # Accept only the first two tokens of row 1.
        cache.keep_row(1)
        cache.truncate(16)
        resumed, _ = decoder_lm.forward(ids[16:], cache=cache)
        np.testing.assert_allclose(resumed, full_base[:, 16:], atol=ATOL)

    def test_cross_attention_cached_once(self, encdec_lm):
        """After prefill the cross K/V is cached and memory is not re-projected."""
        enc_ids = np.arange(1, 9) % 64
        encdec_lm.encode_prompt(enc_ids)
        cache = encdec_lm.new_cache()
        encdec_lm.forward(np.asarray([1]), cache=cache)
        assert all(layer.has_cross for layer in cache.layers)
        # Wipe the transformer's memory: cached cross K/V must be sufficient.
        encdec_lm.backbone.transformer._cached_memory = None
        base, _ = encdec_lm.forward(np.asarray([2]), cache=cache)
        assert base.shape[1] == 1

    def test_max_seq_len_still_enforced(self, decoder_lm):
        cache = decoder_lm.new_cache()
        max_len = decoder_lm.backbone.max_seq_len
        decoder_lm.forward(np.zeros(max_len, dtype=np.int64), cache=cache)
        with pytest.raises(ValueError, match="exceeds max_seq_len"):
            decoder_lm.forward(np.zeros(1, dtype=np.int64), cache=cache)
