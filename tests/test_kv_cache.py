"""Tests for the per-layer KV cache and incremental-forward equivalence."""

import numpy as np
import pytest

from repro.models.decoder_lm import DecoderConfig, TinyCodeLlama
from repro.models.encdec_lm import EncDecConfig, TinyCodeT5p
from repro.models.medusa import MedusaLM
from repro.nn.kv_cache import KVCache

ATOL = 1e-5


@pytest.fixture(scope="module")
def decoder_lm() -> MedusaLM:
    backbone = TinyCodeLlama(
        DecoderConfig(vocab_size=64, dim=32, num_layers=2, num_heads=4, max_seq_len=96, seed=3)
    )
    return MedusaLM(backbone, vocab_size=64, num_medusa_heads=3, seed=3)


@pytest.fixture(scope="module")
def encdec_lm() -> MedusaLM:
    backbone = TinyCodeT5p(
        EncDecConfig(
            vocab_size=64, dim=32, num_encoder_layers=2, num_decoder_layers=2, num_heads=4, max_seq_len=96, seed=4
        )
    )
    return MedusaLM(backbone, vocab_size=64, num_medusa_heads=2, seed=4)


class TestKVCacheOps:
    def _cache(self, batch=1) -> KVCache:
        return KVCache(num_layers=2, num_heads=4, head_dim=8, capacity=16, batch=batch)

    def test_append_grows_length(self):
        cache = self._cache()
        k = np.ones((1, 4, 3, 8), dtype=np.float32)
        full_k, full_v = cache.layers[0].append(k, 2 * k)
        assert cache.layers[0].length == 3
        assert full_k.shape == (1, 4, 3, 8)
        assert np.all(full_v == 2.0)

    def test_append_overflow_raises(self):
        cache = self._cache()
        k = np.zeros((1, 4, 17, 8), dtype=np.float32)
        with pytest.raises(ValueError, match="overflow"):
            cache.layers[0].append(k, k)

    def test_append_batch_mismatch_raises(self):
        cache = self._cache()
        k = np.zeros((2, 4, 1, 8), dtype=np.float32)
        with pytest.raises(ValueError, match="batch"):
            cache.layers[0].append(k, k)

    def test_truncate_rolls_back_every_layer(self):
        cache = self._cache()
        k = np.zeros((1, 4, 5, 8), dtype=np.float32)
        for layer in cache.layers:
            layer.append(k, k)
        cache.truncate(2)
        assert all(layer.length == 2 for layer in cache.layers)
        cache.truncate(10)  # beyond current length: no-op
        assert cache.length == 2
        with pytest.raises(ValueError):
            cache.truncate(-1)

    def test_expand_batch_tiles_rows(self):
        cache = self._cache()
        k = np.arange(1 * 4 * 2 * 8, dtype=np.float32).reshape(1, 4, 2, 8)
        cache.layers[0].append(k, k)
        cache.layers[1].append(k, k)
        cache.expand_batch(3)
        assert cache.batch == 3
        # Only the filled prefix is defined; capacity tails stay uninitialised.
        assert np.array_equal(cache.layers[0].k[0, :, :2], k[0])
        assert np.array_equal(cache.layers[0].k[2, :, :2], k[0])
        with pytest.raises(ValueError, match="batch-1"):
            cache.expand_batch(5)

    def test_keep_row_collapses_batch(self):
        cache = self._cache()
        k = np.zeros((1, 4, 1, 8), dtype=np.float32)
        for layer in cache.layers:
            layer.append(k, k)
        cache.expand_batch(3)
        marker = np.full((3, 4, 2, 8), 7.0, dtype=np.float32)
        marker[1] = 9.0
        for layer in cache.layers:
            layer.append(marker, marker)
        cache.keep_row(1)
        assert cache.batch == 1
        assert np.all(cache.layers[0].k[0, :, 1:3] == 9.0)
        with pytest.raises(IndexError):
            cache.keep_row(4)


class TestIncrementalEquivalence:
    """Cached incremental logits must equal full-recompute logits."""

    def test_decoder_only_prefill_then_steps(self, decoder_lm):
        ids = np.arange(1, 25) % 64
        full_base, full_heads = decoder_lm.forward(ids)
        cache = decoder_lm.new_cache()
        part_base, _ = decoder_lm.forward(ids[:10], cache=cache)
        np.testing.assert_allclose(part_base, full_base[:, :10], atol=ATOL)
        # Feed the rest one token at a time.
        for t in range(10, len(ids)):
            step_base, step_heads = decoder_lm.forward(ids[t : t + 1], cache=cache)
            np.testing.assert_allclose(step_base[0, 0], full_base[0, t], atol=ATOL)
            for head_full, head_step in zip(full_heads, step_heads):
                np.testing.assert_allclose(head_step[0, 0], head_full[0, t], atol=ATOL)
        assert cache.length == len(ids)

    def test_encoder_decoder_prefill_then_steps(self, encdec_lm):
        enc_ids = np.arange(2, 14) % 64
        dec_ids = np.arange(5, 23) % 64
        full_base, full_heads = encdec_lm.forward(dec_ids, enc_ids)
        encdec_lm.encode_prompt(enc_ids)
        cache = encdec_lm.new_cache()
        part_base, _ = encdec_lm.forward(dec_ids[:6], cache=cache)
        np.testing.assert_allclose(part_base, full_base[:, :6], atol=ATOL)
        for t in range(6, len(dec_ids)):
            step_base, step_heads = encdec_lm.forward(dec_ids[t : t + 1], cache=cache)
            np.testing.assert_allclose(step_base[0, 0], full_base[0, t], atol=ATOL)
            for head_full, head_step in zip(full_heads, step_heads):
                np.testing.assert_allclose(head_step[0, 0], head_full[0, t], atol=ATOL)

    def test_rollback_after_rejected_tokens(self, decoder_lm):
        """Junk appended then truncated away must not perturb later logits."""
        ids = np.arange(3, 33) % 64
        full_base, _ = decoder_lm.forward(ids)
        cache = decoder_lm.new_cache()
        decoder_lm.forward(ids[:12], cache=cache)
        # Speculate six wrong tokens, then roll back.
        junk = (ids[12:18] + 17) % 64
        decoder_lm.forward(junk, cache=cache)
        cache.truncate(12)
        resumed_base, _ = decoder_lm.forward(ids[12:], cache=cache)
        np.testing.assert_allclose(resumed_base, full_base[:, 12:], atol=ATOL)

    def test_batched_verification_roundtrip(self, decoder_lm):
        """expand_batch -> batched verify -> keep_row -> truncate matches full recompute."""
        ids = np.arange(7, 27) % 64
        full_base, _ = decoder_lm.forward(ids)
        cache = decoder_lm.new_cache()
        decoder_lm.forward(ids[:14], cache=cache)
        # Three candidate continuations; row 1 is the "accepted" true one.
        true_tail = ids[14:18]
        rows = np.stack([(true_tail + 5) % 64, true_tail, (true_tail + 9) % 64])
        cache.expand_batch(3)
        batch_base, _ = decoder_lm.forward(rows, cache=cache)
        np.testing.assert_allclose(batch_base[1], full_base[0, 14:18], atol=ATOL)
        # Accept only the first two tokens of row 1.
        cache.keep_row(1)
        cache.truncate(16)
        resumed, _ = decoder_lm.forward(ids[16:], cache=cache)
        np.testing.assert_allclose(resumed, full_base[:, 16:], atol=ATOL)

    def test_cross_attention_cached_once(self, encdec_lm):
        """After prefill the cross K/V is cached and memory is not re-projected."""
        enc_ids = np.arange(1, 9) % 64
        encdec_lm.encode_prompt(enc_ids)
        cache = encdec_lm.new_cache()
        encdec_lm.forward(np.asarray([1]), cache=cache)
        assert all(layer.has_cross for layer in cache.layers)
        # Wipe the transformer's memory: cached cross K/V must be sufficient.
        encdec_lm.backbone.transformer._cached_memory = None
        base, _ = encdec_lm.forward(np.asarray([2]), cache=cache)
        assert base.shape[1] == 1

    def test_max_seq_len_still_enforced(self, decoder_lm):
        cache = decoder_lm.new_cache()
        max_len = decoder_lm.backbone.max_seq_len
        decoder_lm.forward(np.zeros(max_len, dtype=np.int64), cache=cache)
        with pytest.raises(ValueError, match="exceeds max_seq_len"):
            decoder_lm.forward(np.zeros(1, dtype=np.int64), cache=cache)
