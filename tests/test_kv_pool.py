"""Unit tests for the paged K/V block pool (refcounts, COW, table ops).

Engine-level behaviour — paged/row token identity across decode modes, the
zero-copy prefix counter, page-gated admission — lives in
``tests/test_serving.py``.  This file pins down the storage layer itself:
:class:`~repro.nn.kv_pool.KVBlockPool` allocation and refcounting,
:class:`~repro.nn.kv_pool.PagedKVCache` table operations against the row
cache as a content oracle, copy-on-write sharing, zero-copy prefix
snapshot/splice, pressure/exhaustion, and leak-freedom (every op sequence
ends with all refcounts at zero once the caches are released).
"""

from __future__ import annotations

import numpy as np
import pytest

from proptest import Cases, for_all, num_cases

from repro.nn.kv_cache import KVCache, KVSegment
from repro.nn.kv_pool import (
    KVBlockPool,
    KVPoolExhausted,
    PagedKVCache,
    PagedPrefix,
    blocks_for,
)

LAYERS, HEADS, HEAD_DIM = 2, 2, 4
BLOCK = 4


def make_pool(num_blocks: int = 64, block_size: int = BLOCK) -> KVBlockPool:
    return KVBlockPool(LAYERS, HEADS, HEAD_DIM, block_size=block_size, num_blocks=num_blocks)


def random_kv(rng, batch: int, width: int):
    shape = (batch, HEADS, width, HEAD_DIM)
    return (
        rng.normal(size=shape).astype(np.float32),
        rng.normal(size=shape).astype(np.float32),
    )


def append_both(row_cache: KVCache, paged: PagedKVCache, rng, width: int, widths=None):
    """Append identical projections to both caches, layer by layer."""
    batch = paged.batch
    if widths is not None:
        row_cache.set_append_widths(widths)
        paged.set_append_widths(widths)
    try:
        for row_layer, paged_layer in zip(row_cache.layers, paged.layers):
            k_new, v_new = random_kv(rng, batch, width)
            row_layer.append(k_new, v_new)
            paged_layer.append(k_new, v_new)
    finally:
        row_cache.set_append_widths(None)
        paged.set_append_widths(None)


def assert_same_content(row_cache: KVCache, paged: PagedKVCache):
    """Row-by-row bitwise comparison of the cached (non-stale) positions."""
    assert row_cache.lengths.tolist() == paged.lengths.tolist()
    view = int(paged.length)
    for layer_index, row_layer in enumerate(row_cache.layers):
        k_paged, v_paged = paged._gather(layer_index, view)
        for row, length in enumerate(row_cache.lengths):
            length = int(length)
            np.testing.assert_array_equal(k_paged[row, :, :length], row_layer.k[row, :, :length])
            np.testing.assert_array_equal(v_paged[row, :, :length], row_layer.v[row, :, :length])


class TestBlocksFor:
    def test_rounding(self):
        assert blocks_for(0, 4) == 0
        assert blocks_for(1, 4) == 1
        assert blocks_for(4, 4) == 1
        assert blocks_for(5, 4) == 2


class TestKVBlockPool:
    def test_alloc_free_roundtrip(self):
        pool = make_pool(num_blocks=4)
        blocks = [pool.alloc() for _ in range(4)]
        assert pool.num_free == 0
        assert pool.blocks_in_use == 4
        assert pool.peak_blocks_in_use == 4
        for block in blocks:
            assert pool.refcounts[block] == 1
            pool.decref(block)
        assert pool.num_free == 4
        assert np.all(pool.refcounts == 0)
        # Peak is a lifetime high-water mark, not a current gauge.
        assert pool.peak_blocks_in_use == 4

    def test_incref_decref_sharing(self):
        pool = make_pool()
        block = pool.alloc()
        pool.incref(block)
        assert pool.refcounts[block] == 2
        assert pool.num_shared == 1
        pool.decref(block)
        assert pool.num_free == pool.num_blocks - 1  # still held once
        pool.decref(block)
        assert pool.num_free == pool.num_blocks

    def test_double_free_and_free_incref_rejected(self):
        pool = make_pool()
        block = pool.alloc()
        pool.decref(block)
        with pytest.raises(ValueError, match="double free"):
            pool.decref(block)
        with pytest.raises(ValueError, match="free block"):
            pool.incref(block)

    def test_exhaustion_raises_without_pressure_callback(self):
        pool = make_pool(num_blocks=2)
        pool.alloc()
        pool.alloc()
        with pytest.raises(KVPoolExhausted, match="exhausted"):
            pool.alloc()

    def test_pressure_callback_relieves_exhaustion(self):
        pool = make_pool(num_blocks=2)
        held = [pool.alloc(), pool.alloc()]

        def shed_one() -> bool:
            if held:
                pool.decref(held.pop())
                return True
            return False

        pool.on_pressure = shed_one
        block = pool.alloc()  # relieved by one eviction, no raise
        assert pool.refcounts[block] == 1
        pool.alloc()  # drains the second held block too
        with pytest.raises(KVPoolExhausted):
            pool.alloc()  # nothing left to shed

    def test_copy_block_copies_all_layers_and_counts(self):
        pool = make_pool()
        rng = np.random.default_rng(0)
        source = pool.alloc()
        for layer in range(LAYERS):
            pool.k[layer][source] = rng.normal(size=pool.k[layer][source].shape)
            pool.v[layer][source] = rng.normal(size=pool.v[layer][source].shape)
        target = pool.copy_block(source)
        assert target != source
        assert pool.cow_events == 1
        for layer in range(LAYERS):
            np.testing.assert_array_equal(pool.k[layer][target], pool.k[layer][source])
            np.testing.assert_array_equal(pool.v[layer][target], pool.v[layer][source])

    def test_stats_shape(self):
        pool = make_pool(num_blocks=8)
        pool.alloc()
        stats = pool.stats()
        assert stats["blocks_in_use"] == 1
        assert stats["blocks_free"] == 7
        assert stats["occupancy"] == 1 / 8
        assert stats["kv_bytes_in_use"] == pool.block_nbytes
        assert stats["peak_kv_bytes"] == pool.block_nbytes
        assert stats["shared_blocks"] == 0 and stats["cow_events"] == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="block_size"):
            KVBlockPool(1, 1, 1, block_size=0)
        with pytest.raises(ValueError, match="num_blocks"):
            KVBlockPool(1, 1, 1, num_blocks=0)
        with pytest.raises(ValueError, match="num_layers"):
            KVBlockPool(0, 1, 1)


class TestPagedPrefix:
    def _cache_with_row(self, pool, length: int, seed: int = 0) -> PagedKVCache:
        cache = PagedKVCache(pool, batch=1)
        rng = np.random.default_rng(seed)
        for layer in cache.layers:
            layer.append(*random_kv(rng, 1, length))
        return cache

    def test_snapshot_pins_blocks(self):
        pool = make_pool()
        cache = self._cache_with_row(pool, 6)
        prefix = cache.snapshot_prefix(0, 6)
        assert prefix.length == 6
        assert len(prefix.block_ids) == blocks_for(6, BLOCK)
        assert all(pool.refcounts[b] == 2 for b in prefix.block_ids)
        cache.release()
        # The snapshot keeps the blocks alive after the row is gone.
        assert all(pool.refcounts[b] == 1 for b in prefix.block_ids)
        prefix.release()
        assert np.all(pool.refcounts == 0)

    def test_release_idempotent(self):
        pool = make_pool()
        cache = self._cache_with_row(pool, 5)
        prefix = cache.snapshot_prefix(0, 5)
        prefix.release()
        prefix.release()  # no double decref
        cache.release()
        assert np.all(pool.refcounts == 0)

    def test_head_view_is_non_owning(self):
        pool = make_pool()
        cache = self._cache_with_row(pool, 8)
        prefix = cache.snapshot_prefix(0, 8)
        before = pool.refcounts.copy()
        head = prefix.head(3)
        assert head.length == 3
        assert len(head.block_ids) == blocks_for(3, BLOCK)
        np.testing.assert_array_equal(pool.refcounts, before)  # no incref
        head.release()  # no-op for views
        np.testing.assert_array_equal(pool.refcounts, before)
        prefix.release()
        cache.release()

    def test_nbytes_and_geometry(self):
        pool = make_pool()
        cache = self._cache_with_row(pool, 5)
        prefix = cache.snapshot_prefix(0, 5)
        assert prefix.num_layers == LAYERS
        assert prefix.num_heads == HEADS
        assert prefix.head_dim == HEAD_DIM
        assert prefix.block_nbytes == pool.block_nbytes
        assert prefix.nbytes == blocks_for(5, BLOCK) * pool.block_nbytes
        prefix.release()
        cache.release()

    def test_validation(self):
        pool = make_pool()
        with pytest.raises(ValueError, match="cannot hold"):
            PagedPrefix(pool, [0], 9)  # 9 positions need 3 blocks at size 4
        with pytest.raises(ValueError, match="negative"):
            PagedPrefix(pool, [], -1)
        cache = self._cache_with_row(pool, 5)
        prefix = cache.snapshot_prefix(0, 5)
        with pytest.raises(ValueError, match="out of range"):
            prefix.head(6)
        prefix.release()
        cache.release()


class TestPagedVsRowContent:
    """The paged cache must hold bitwise the row cache's contents under every op."""

    def _pair(self, batch: int, capacity: int = 64, pool_blocks: int = 128):
        pool = make_pool(num_blocks=pool_blocks)
        row_cache = KVCache(LAYERS, HEADS, HEAD_DIM, capacity=capacity, batch=batch)
        paged = PagedKVCache(pool, batch=batch)
        return pool, row_cache, paged

    def test_plain_appends(self):
        pool, row_cache, paged = self._pair(batch=3)
        rng = np.random.default_rng(0)
        for width in (1, BLOCK, BLOCK + 1, 2):
            append_both(row_cache, paged, rng, width)
        assert_same_content(row_cache, paged)
        paged.release()
        assert np.all(pool.refcounts == 0)

    def test_ragged_append_widths(self):
        pool, row_cache, paged = self._pair(batch=3)
        rng = np.random.default_rng(1)
        append_both(row_cache, paged, rng, 5)
        append_both(row_cache, paged, rng, 4, widths=[4, 0, 2])
        append_both(row_cache, paged, rng, 3, widths=[1, 3, 0])
        assert row_cache.lengths.tolist() == [10, 8, 7]
        assert_same_content(row_cache, paged)
        paged.release()
        assert np.all(pool.refcounts == 0)

    def test_repeat_rows_then_compact_rows(self):
        pool, row_cache, paged = self._pair(batch=2)
        rng = np.random.default_rng(2)
        append_both(row_cache, paged, rng, 6)
        row_step = row_cache.repeat_rows([2, 3])
        paged_step = paged.repeat_rows([2, 3])
        # Tiling is pure aliasing: zero copies until a write diverges.
        assert pool.cow_events == 0
        append_both(row_step, paged_step, rng, 3, widths=[3, 2, 1, 3, 2])
        assert_same_content(row_step, paged_step)
        assert pool.cow_events > 0  # the shared tail blocks diverged
        # Sources are untouched by the tiles' divergent writes.
        assert_same_content(row_cache, paged)
        row_new = row_step.compact_rows([1, 3], [8, 7])
        paged_new = paged_step.compact_rows([1, 3], [8, 7])
        paged_step.release()
        paged.release()
        assert_same_content(row_new, paged_new)
        paged_new.release()
        assert np.all(pool.refcounts == 0)

    def test_select_rows_subset_and_reorder(self):
        pool, row_cache, paged = self._pair(batch=4)
        rng = np.random.default_rng(3)
        append_both(row_cache, paged, rng, 7, widths=[7, 3, 5, 6])
        row_cache.select_rows([3, 1])
        paged.select_rows([3, 1])
        assert paged.lengths.tolist() == [6, 3]
        assert_same_content(row_cache, paged)
        paged.release()
        assert np.all(pool.refcounts == 0)

    def test_truncate_rows_frees_vacated_blocks(self):
        pool, row_cache, paged = self._pair(batch=2)
        rng = np.random.default_rng(4)
        append_both(row_cache, paged, rng, 10)
        held_before = pool.blocks_in_use
        row_cache.truncate_rows([3, 10])
        paged.truncate_rows([3, 10])
        assert pool.blocks_in_use < held_before  # row 0's tail blocks returned
        assert_same_content(row_cache, paged)
        paged.release()
        assert np.all(pool.refcounts == 0)

    def test_compact_paths_matches_row_cache(self):
        pool, row_cache, paged = self._pair(batch=2)
        rng = np.random.default_rng(5)
        append_both(row_cache, paged, rng, 6, widths=[6, 5])  # committed prefixes
        append_both(row_cache, paged, rng, 5, widths=[5, 4])  # tree window
        prefixes = [6, 5]
        paths = [[0, 2, 4], [1, 3]]
        row_new = row_cache.compact_paths([0, 1], prefixes, paths)
        paged_new = paged.compact_paths([0, 1], prefixes, paths)
        paged.release()
        assert row_new.lengths.tolist() == [9, 7]
        assert_same_content(row_new, paged_new)
        paged_new.release()
        assert np.all(pool.refcounts == 0)

    def test_concat_consumes_sources(self):
        pool = make_pool()
        rng = np.random.default_rng(6)
        rows = []
        pages = []
        for seed in range(3):
            row_cache = KVCache(LAYERS, HEADS, HEAD_DIM, capacity=32, batch=1)
            paged = PagedKVCache(pool, batch=1)
            append_both(row_cache, paged, rng, 4 + seed)
            rows.append(row_cache)
            pages.append(paged)
        row_merged = KVCache.concat(rows)
        paged_merged = PagedKVCache.concat(pages)
        assert paged_merged.lengths.tolist() == [4, 5, 6]
        assert_same_content(row_merged, paged_merged)
        # Sources were consumed (tables moved, no refcount churn)...
        with pytest.raises(ValueError, match="released"):
            PagedKVCache.concat([pages[0], paged_merged])
        # ... so one release of the merged cache frees everything.
        paged_merged.release()
        assert np.all(pool.refcounts == 0)

    def test_concat_rejects_mixed_pools(self):
        pool_a, pool_b = make_pool(), make_pool()
        with pytest.raises(ValueError, match="one KVBlockPool"):
            PagedKVCache.concat([PagedKVCache(pool_a, batch=1), PagedKVCache(pool_b, batch=1)])


class TestZeroCopySplice:
    def test_splice_aliases_blocks_without_copying(self):
        pool = make_pool()
        source = PagedKVCache(pool, batch=1)
        rng = np.random.default_rng(7)
        for layer in source.layers:
            layer.append(*random_kv(rng, 1, 9))
        prefix = source.snapshot_prefix(0, 9)
        held_before = pool.blocks_in_use
        cow_before = pool.cow_events

        fresh = PagedKVCache(pool, batch=1)
        fresh.splice_prefix(0, prefix.head(6))
        # Zero copies, zero fresh blocks: the splice is pure table aliasing.
        assert pool.blocks_in_use == held_before
        assert pool.cow_events == cow_before
        assert fresh.lengths.tolist() == [6]
        assert fresh._tables[0] == list(prefix.block_ids[: blocks_for(6, BLOCK)])

        # First divergent append copy-on-writes only the shared partial block.
        for layer in fresh.layers:
            layer.append(*random_kv(rng, 1, 2))
        assert pool.cow_events == cow_before + 1
        # The source row still reads its own original content.
        k_source, _ = source._gather(0, 9)
        k_prefix_block = pool.k[0][prefix.block_ids[1]]
        np.testing.assert_array_equal(k_source[0, :, BLOCK : 2 * BLOCK], k_prefix_block[:, :, :])

        fresh.release()
        prefix.release()
        source.release()
        assert np.all(pool.refcounts == 0)

    def test_splice_requires_fresh_row_and_same_pool(self):
        pool = make_pool()
        cache = PagedKVCache(pool, batch=1)
        rng = np.random.default_rng(8)
        for layer in cache.layers:
            layer.append(*random_kv(rng, 1, 5))
        prefix = cache.snapshot_prefix(0, 5)
        with pytest.raises(ValueError, match="fresh row"):
            cache.splice_prefix(0, prefix)
        other_pool_cache = PagedKVCache(make_pool(), batch=1)
        with pytest.raises(ValueError, match="different KVBlockPool"):
            other_pool_cache.splice_prefix(0, prefix)
        prefix.release()
        cache.release()

    def test_mixing_modes_raises_a_friendly_error(self):
        pool = make_pool()
        paged = PagedKVCache(pool, batch=1)
        rng = np.random.default_rng(9)
        segment = KVSegment(
            [rng.normal(size=(HEADS, 3, HEAD_DIM)).astype(np.float32) for _ in range(LAYERS)],
            [rng.normal(size=(HEADS, 3, HEAD_DIM)).astype(np.float32) for _ in range(LAYERS)],
        )
        with pytest.raises(TypeError, match="PagedPrefix"):
            paged.splice_prefix(0, segment)
        row_cache = KVCache(LAYERS, HEADS, HEAD_DIM, capacity=16, batch=1)
        paged2 = PagedKVCache(pool, batch=1)
        for layer in paged2.layers:
            layer.append(*random_kv(rng, 1, 3))
        prefix = paged2.snapshot_prefix(0, 3)
        with pytest.raises(TypeError, match="KVSegment"):
            row_cache.splice_prefix(0, prefix)
        prefix.release()
        paged.release()
        paged2.release()


class TestPagedOpsFuzz:
    """Random op sequences: paged content tracks the row oracle; no leaks."""

    def _run_trace(self, cases: Cases) -> None:
        rng = np.random.default_rng(cases.integer(0, 2**31))
        batch = cases.integer(1, 3)
        pool = make_pool(num_blocks=512, block_size=cases.integer(2, 6))
        row_cache = KVCache(LAYERS, HEADS, HEAD_DIM, capacity=128, batch=batch)
        paged = PagedKVCache(pool, batch=batch)
        for _ in range(cases.integer(1, 8)):
            action = cases.integer(0, 3)
            batch_now = paged.batch
            if action == 0 and batch_now > 0:  # ragged append
                width = cases.integer(1, 7)
                widths = [cases.integer(0, width) for _ in range(batch_now)]
                append_both(row_cache, paged, rng, width, widths=widths)
            elif action == 1 and batch_now > 0:  # tile + diverge + compact
                counts = [cases.integer(1, 2) for _ in range(batch_now)]
                row_step = row_cache.repeat_rows(counts)
                paged_step = paged.repeat_rows(counts)
                append_both(row_step, paged_step, rng, 2)
                keep = [cases.integer(0, sum(counts) - 1) for _ in range(batch_now)]
                lengths = [int(row_step.lengths[k]) - cases.integer(0, 1) for k in keep]
                row_new = row_step.compact_rows(keep, lengths)
                paged_new = paged_step.compact_rows(keep, lengths)
                paged_step.release()
                paged.release()
                row_cache, paged = row_new, paged_new
            elif action == 2 and batch_now > 1:  # drop a row
                victim = cases.integer(0, batch_now - 1)
                keep_rows = [r for r in range(batch_now) if r != victim]
                row_cache.select_rows(keep_rows)
                paged.select_rows(keep_rows)
            elif batch_now > 0:  # snapshot + splice into a fresh row
                source_row = cases.integer(0, batch_now - 1)
                length = int(paged.lengths[source_row])
                if length > 0:
                    take = cases.integer(1, length)
                    segment = row_cache.gather_prefix(source_row, take)
                    prefix = paged.snapshot_prefix(source_row, take)
                    fresh_row = KVCache(LAYERS, HEADS, HEAD_DIM, capacity=128, batch=1)
                    fresh_paged = PagedKVCache(pool, batch=1)
                    fresh_row.splice_prefix(0, segment)
                    fresh_paged.splice_prefix(0, prefix)
                    prefix.release()
                    row_cache = KVCache.concat([row_cache, fresh_row])
                    paged = PagedKVCache.concat([paged, fresh_paged])
            assert_same_content(row_cache, paged)
        paged.release()
        assert np.all(pool.refcounts == 0), "leaked block references"
        assert pool.num_free == pool.num_blocks

    def test_random_op_traces(self):
        for_all(num_cases(40, 40), self._run_trace, seed=43)


class TestModelPoolFactories:
    def test_transformer_make_block_pool_geometry(self, tiny_pipeline):
        model = tiny_pipeline.models["ours"]
        pool = model.new_block_pool(block_size=8, num_blocks=32)
        backbone_attn = model.backbone.transformer.blocks[0].attn
        assert pool.num_layers == len(model.backbone.transformer.blocks)
        assert pool.num_heads == backbone_attn.num_heads
        assert pool.head_dim == backbone_attn.head_dim
        assert pool.block_size == 8 and pool.num_blocks == 32

    def test_encoder_decoder_rejected(self):
        from repro.models.encdec_lm import EncDecConfig, TinyCodeT5p
        from repro.models.medusa import MedusaLM

        backbone = TinyCodeT5p(
            EncDecConfig(
                vocab_size=64, dim=32, num_encoder_layers=1, num_decoder_layers=1,
                num_heads=2, max_seq_len=64,
            )
        )
        model = MedusaLM(backbone, vocab_size=64, num_medusa_heads=2)
        with pytest.raises(ValueError, match="decoder-only"):
            model.new_block_pool()
