"""Tests for syntax-enriched label construction (paper Fig. 4)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.labels import (
    apply_syntax_enrichment,
    apply_syntax_enrichment_reference,
    build_shifted_labels,
    build_syntax_enriched_labels,
    ignore_fraction_per_head,
)

FRAG = 4
PAD = 0
IGNORE = 5


class TestShiftedLabels:
    def test_row_zero_is_base_label(self):
        base = [10, 11, 12, 13]
        labels = build_shifted_labels(base, num_heads=2, pad_id=PAD)
        np.testing.assert_array_equal(labels[0], base)

    def test_row_i_is_left_shift(self):
        base = [10, 11, 12, 13]
        labels = build_shifted_labels(base, num_heads=3, pad_id=PAD)
        np.testing.assert_array_equal(labels[1], [11, 12, 13, PAD])
        np.testing.assert_array_equal(labels[2], [12, 13, PAD, PAD])
        np.testing.assert_array_equal(labels[3], [13, PAD, PAD, PAD])

    def test_shape(self):
        labels = build_shifted_labels(list(range(7)), num_heads=10, pad_id=PAD)
        assert labels.shape == (11, 7)

    def test_more_heads_than_sequence(self):
        labels = build_shifted_labels([1, 2], num_heads=5, pad_id=PAD)
        np.testing.assert_array_equal(labels[4], [PAD, PAD])

    def test_empty_heads(self):
        labels = build_shifted_labels([1, 2, 3], num_heads=0, pad_id=PAD)
        assert labels.shape == (1, 3)


class TestSyntaxEnrichment:
    def test_masks_after_last_frag(self):
        # Column layout: base, then heads.  Head labels: [FRAG, a, b] ->
        # nothing after FRAG at head 1?  Construct explicit matrix.
        labels = np.array(
            [
                [10, 11],
                [FRAG, 12],
                [13, FRAG],
                [14, 15],
            ]
        )
        out = apply_syntax_enrichment(labels, frag_id=FRAG, ignore_id=IGNORE)
        # Column 0: last FRAG among heads is row 1 -> rows 2,3 ignored.
        assert out[2, 0] == IGNORE and out[3, 0] == IGNORE
        assert out[1, 0] == FRAG
        # Column 1: last FRAG among heads is row 2 -> row 3 ignored.
        assert out[3, 1] == IGNORE
        assert out[2, 1] == FRAG

    def test_column_without_frag_untouched(self):
        labels = np.array([[10], [11], [12]])
        out = apply_syntax_enrichment(labels, frag_id=FRAG, ignore_id=IGNORE)
        np.testing.assert_array_equal(out, labels)

    def test_base_row_never_modified(self):
        labels = np.array([[FRAG, 10], [11, 12], [FRAG, FRAG]])
        out = apply_syntax_enrichment(labels, frag_id=FRAG, ignore_id=IGNORE)
        np.testing.assert_array_equal(out[0], labels[0])

    def test_input_not_mutated(self):
        labels = np.array([[1, 2], [FRAG, 3], [4, 5]])
        original = labels.copy()
        apply_syntax_enrichment(labels, frag_id=FRAG, ignore_id=IGNORE)
        np.testing.assert_array_equal(labels, original)

    def test_single_row_noop(self):
        labels = np.array([[1, 2, 3]])
        out = apply_syntax_enrichment(labels, frag_id=FRAG, ignore_id=IGNORE)
        np.testing.assert_array_equal(out, labels)

    def test_matches_paper_example_shape(self):
        # Mirrors the Fig. 4 example: at a position where heads 1-3 end with a
        # FRAG and heads 4+ continue into the next fragment, heads 4+ must be
        # ignored.
        base = [100, FRAG, FRAG, 101, 102, 103, 104, FRAG]
        labels = build_shifted_labels(base, num_heads=6, pad_id=PAD)
        out = apply_syntax_enrichment(labels, frag_id=FRAG, ignore_id=IGNORE)
        column = 0
        frag_rows = [r for r in range(1, 7) if labels[r, column] == FRAG]
        last_frag = max(frag_rows)
        for row in range(last_frag + 1, 7):
            assert out[row, column] == IGNORE


class TestReferenceEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.sampled_from([FRAG, 10, 11, 12, 13, 14]), min_size=1, max_size=40),
        st.integers(min_value=1, max_value=12),
    )
    def test_parallel_algorithm_matches_reference(self, base, num_heads):
        """Property: the vectorised parallel algorithm equals the per-column oracle."""
        labels = build_shifted_labels(base, num_heads=num_heads, pad_id=PAD)
        fast = apply_syntax_enrichment(labels, frag_id=FRAG, ignore_id=IGNORE)
        slow = apply_syntax_enrichment_reference(labels, frag_id=FRAG, ignore_id=IGNORE)
        np.testing.assert_array_equal(fast, slow)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.sampled_from([FRAG, 20, 21, 22]), min_size=2, max_size=40),
        st.integers(min_value=1, max_value=10),
    )
    def test_supervised_prefix_ends_at_boundary(self, base, num_heads):
        """Property: in every column the supervised head labels, read downward,
        stop at (or before) a [FRAG] — never straddle a fragment boundary."""
        labels = build_shifted_labels(base, num_heads=num_heads, pad_id=PAD)
        out = apply_syntax_enrichment(labels, frag_id=FRAG, ignore_id=IGNORE)
        for column in range(out.shape[1]):
            head_column = out[1:, column]
            has_frag = FRAG in labels[1:, column]
            if not has_frag:
                continue
            supervised = [int(v) for v in head_column if v != IGNORE]
            # The last supervised head label must be the FRAG boundary itself
            # (or a PAD that was already beyond the sequence).
            non_pad = [v for v in supervised if v != PAD]
            if non_pad:
                assert non_pad[-1] == FRAG

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.sampled_from([FRAG, 30, 31]), min_size=2, max_size=30))
    def test_ignore_fraction_monotone_in_head_index(self, base):
        """Property (paper claim): later heads have at least as many ignored positions."""
        labels = build_syntax_enriched_labels(base, num_heads=8, frag_id=FRAG, pad_id=PAD, ignore_id=IGNORE)
        fractions = ignore_fraction_per_head(labels, IGNORE)
        head_fractions = fractions[1:]
        assert all(b >= a - 1e-9 for a, b in zip(head_fractions, head_fractions[1:]))


class TestFullConstruction:
    def test_pad_becomes_ignore(self):
        labels = build_syntax_enriched_labels([1, 2, 3], num_heads=4, frag_id=FRAG, pad_id=PAD, ignore_id=IGNORE)
        assert PAD not in labels

    def test_prompt_mask_applies_to_all_rows(self):
        base = [1, 2, FRAG, 3]
        mask = [True, True, False, False]
        labels = build_syntax_enriched_labels(
            base, num_heads=2, frag_id=FRAG, pad_id=PAD, ignore_id=IGNORE, ignore_prompt_mask=mask
        )
        assert np.all(labels[:, :2] == IGNORE)

    def test_base_row_preserved_outside_prompt(self):
        base = [1, FRAG, 3]
        labels = build_syntax_enriched_labels(base, num_heads=2, frag_id=FRAG, pad_id=PAD, ignore_id=IGNORE)
        np.testing.assert_array_equal(labels[0], base)
