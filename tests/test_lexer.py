"""Tests for the Verilog lexer."""

import pytest
from hypothesis import given, strategies as st

from repro.verilog.lexer import KEYWORDS, Lexer, LexerError, Token, TokenKind, tokenize


class TestBasicTokens:
    def test_keywords_are_classified(self):
        tokens = tokenize("module endmodule always begin end")
        assert [t.kind for t in tokens] == [TokenKind.KEYWORD] * 5

    def test_identifiers(self):
        tokens = tokenize("data_out my_signal_2 _private $display")
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[1].kind is TokenKind.IDENTIFIER
        assert tokens[2].kind is TokenKind.IDENTIFIER
        assert tokens[3].kind is TokenKind.SYSTEM_IDENTIFIER

    def test_identifier_with_dollar_inside(self):
        tokens = tokenize("sig$nal")
        assert tokens[0].text == "sig$nal"

    def test_escaped_identifier(self):
        tokens = tokenize(r"\bus+index other")
        assert tokens[0].kind is TokenKind.IDENTIFIER
        assert tokens[0].text == r"\bus+index"
        assert tokens[1].text == "other"

    def test_sized_binary_number(self):
        tokens = tokenize("4'b1010")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == "4'b1010"

    def test_sized_hex_number(self):
        assert tokenize("8'hFF")[0].text == "8'hFF"

    def test_signed_number(self):
        assert tokenize("8'sd5")[0].text == "8'sd5"

    def test_number_with_x_and_z(self):
        assert tokenize("4'b10xz")[0].text == "4'b10xz"

    def test_plain_decimal(self):
        assert tokenize("42")[0].kind is TokenKind.NUMBER

    def test_real_number(self):
        tokens = tokenize("3.14")
        assert tokens[0].text == "3.14"

    def test_number_with_underscores(self):
        assert tokenize("16'hDE_AD")[0].text == "16'hDE_AD"

    def test_string_literal(self):
        tokens = tokenize('"TEST PASSED"')
        assert tokens[0].kind is TokenKind.STRING

    def test_directive(self):
        tokens = tokenize("`timescale")
        assert tokens[0].kind is TokenKind.DIRECTIVE

    def test_empty_source(self):
        assert tokenize("") == []

    def test_eof_token_included_when_requested(self):
        tokens = tokenize("a", include_eof=True)
        assert tokens[-1].kind is TokenKind.EOF


class TestOperators:
    @pytest.mark.parametrize(
        "operator",
        ["<=", ">=", "==", "!=", "===", "!==", "&&", "||", "<<", ">>", "<<<", ">>>", "**", "~&", "~|", "+:", "-:"],
    )
    def test_multi_char_operator(self, operator):
        tokens = tokenize(f"a {operator} b")
        assert tokens[1].text == operator
        assert tokens[1].kind is TokenKind.OPERATOR

    def test_maximal_munch_triple_shift(self):
        tokens = tokenize("a <<< 2")
        assert tokens[1].text == "<<<"

    def test_single_char_operators(self):
        tokens = tokenize("a + b - c * d / e % f")
        operators = [t.text for t in tokens if t.kind is TokenKind.OPERATOR]
        assert operators == ["+", "-", "*", "/", "%"]

    def test_punctuation(self):
        tokens = tokenize("( ) [ ] { } ; : , . # @")
        assert all(t.kind is TokenKind.PUNCTUATION for t in tokens)


class TestComments:
    def test_line_comment_skipped(self):
        tokens = tokenize("a // this is a comment\nb")
        assert [t.text for t in tokens] == ["a", "b"]

    def test_block_comment_skipped(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.text for t in tokens] == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("a /* never closed")

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize('"no closing quote')


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("module foo;\n  wire x;")
        assert tokens[0].line == 1 and tokens[0].column == 1
        wire = next(t for t in tokens if t.text == "wire")
        assert wire.line == 2
        assert wire.column == 3

    def test_error_reports_position(self):
        try:
            tokenize("wire \x01")
        except LexerError as exc:
            assert exc.line == 1
        else:  # pragma: no cover
            pytest.fail("expected LexerError")


class TestTokenHelpers:
    def test_is_keyword(self):
        token = Token(TokenKind.KEYWORD, "module", 1, 1)
        assert token.is_keyword()
        assert token.is_keyword("module")
        assert not token.is_keyword("endmodule")

    def test_is_keyword_false_for_identifier(self):
        token = Token(TokenKind.IDENTIFIER, "module_name", 1, 1)
        assert not token.is_keyword()

    def test_all_keywords_lex_as_keywords(self):
        for keyword in KEYWORDS:
            assert tokenize(keyword)[0].kind is TokenKind.KEYWORD


class TestWholeModule:
    def test_full_module_token_count(self, sample_design):
        tokens = tokenize(sample_design)
        texts = [t.text for t in tokens]
        assert texts.count("module") == 1
        assert texts.count("endmodule") == 1
        assert "data_register" in texts
        assert "<=" in texts

    def test_lexer_is_iterable(self):
        lexer = Lexer("assign y = a & b;")
        collected = list(lexer)
        assert collected[-1].kind is TokenKind.EOF


@given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_ \n\t;(),+-*&|^~!"), max_size=200))
def test_lexer_never_crashes_on_word_like_text(text):
    """Property: the lexer either tokenizes or raises LexerError, never anything else."""
    try:
        tokens = tokenize(text)
    except LexerError:
        return
    for token in tokens:
        assert token.text != "" or token.kind is TokenKind.EOF


@given(st.integers(min_value=0, max_value=2**32), st.sampled_from(["b", "o", "d", "h"]))
def test_number_literals_round_trip_text(value, base):
    """Property: formatted sized literals lex as a single NUMBER token."""
    digits = {"b": format(value, "b"), "o": format(value, "o"), "d": str(value), "h": format(value, "x")}[base]
    literal = f"64'{base}{digits}"
    tokens = tokenize(literal)
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.NUMBER
    assert tokens[0].text == literal
