"""Tests for the model zoo: backbones, Medusa wrapper, generation utilities."""

import numpy as np
import pytest

from repro.models.decoder_lm import DecoderConfig, TinyCodeLlama
from repro.models.encdec_lm import EncDecConfig, TinyCodeT5p
from repro.models.generation import GenerationConfig, sample_from_logits, top_k_token_ids
from repro.models.medusa import MedusaHead, MedusaLM


VOCAB = 60


@pytest.fixture(scope="module")
def decoder_backbone():
    return TinyCodeLlama(DecoderConfig(vocab_size=VOCAB, dim=16, num_layers=1, num_heads=2, max_seq_len=64))


@pytest.fixture(scope="module")
def encdec_backbone():
    return TinyCodeT5p(
        EncDecConfig(vocab_size=VOCAB, dim=16, num_encoder_layers=1, num_decoder_layers=1, num_heads=2, max_seq_len=64)
    )


class TestBackbones:
    def test_decoder_architecture_tag(self, decoder_backbone):
        assert decoder_backbone.architecture == "decoder-only"

    def test_encdec_architecture_tag(self, encdec_backbone):
        assert encdec_backbone.architecture == "encoder-decoder"

    def test_decoder_hidden_shape(self, decoder_backbone):
        hidden = decoder_backbone.hidden_states(np.array([[1, 2, 3]]))
        assert hidden.shape == (1, 3, 16)

    def test_encdec_hidden_shape(self, encdec_backbone):
        hidden = encdec_backbone.hidden_states(np.array([[1, 2]]), np.array([[3, 4, 5]]))
        assert hidden.shape == (1, 2, 16)

    def test_encdec_encode_caching(self, encdec_backbone):
        encdec_backbone.encode(np.array([[3, 4, 5]]))
        hidden = encdec_backbone.hidden_states(np.array([[1, 2]]))
        assert hidden.shape == (1, 2, 16)

    def test_parameter_counts(self, decoder_backbone, encdec_backbone):
        assert decoder_backbone.num_parameters() > 0
        assert encdec_backbone.num_parameters() > decoder_backbone.num_parameters()


class TestMedusaHead:
    def test_head_output_shape(self):
        rng = np.random.default_rng(0)
        head = MedusaHead(16, VOCAB, rng, index=0)
        hidden = rng.normal(size=(1, 5, 16)).astype(np.float32)
        assert head.forward(hidden).shape == (1, 5, VOCAB)

    def test_head_backward_shape(self):
        rng = np.random.default_rng(1)
        head = MedusaHead(16, VOCAB, rng, index=0)
        hidden = rng.normal(size=(1, 5, 16)).astype(np.float32)
        head.forward(hidden)
        grad = head.backward(np.ones((1, 5, VOCAB), dtype=np.float32))
        assert grad.shape == hidden.shape

    def test_residual_path_present(self):
        # With zero residual-block weights the head reduces to a plain linear
        # projection of the hidden state (the skip connection).
        rng = np.random.default_rng(2)
        head = MedusaHead(8, 10, rng, index=0)
        head.res_linear.weight.data[:] = 0.0
        head.res_linear.bias.data[:] = 0.0
        hidden = rng.normal(size=(1, 2, 8)).astype(np.float32)
        expected = hidden @ head.lm_head.weight.data + head.lm_head.bias.data
        np.testing.assert_allclose(head.forward(hidden), expected, atol=1e-5)


class TestMedusaLM:
    def test_forward_shapes_decoder(self, decoder_backbone):
        model = MedusaLM(decoder_backbone, vocab_size=VOCAB, num_medusa_heads=3)
        base, heads = model.forward(np.array([[1, 2, 3, 4]]))
        assert base.shape == (1, 4, VOCAB)
        assert len(heads) == 3
        assert all(h.shape == (1, 4, VOCAB) for h in heads)

    def test_forward_shapes_encdec(self, encdec_backbone):
        model = MedusaLM(encdec_backbone, vocab_size=VOCAB, num_medusa_heads=2)
        base, heads = model.forward(np.array([[1, 2]]), np.array([[3, 4, 5]]))
        assert base.shape == (1, 2, VOCAB)
        assert len(heads) == 2

    def test_zero_heads_is_ntp_model(self, decoder_backbone):
        model = MedusaLM(decoder_backbone, vocab_size=VOCAB, num_medusa_heads=0)
        base, heads = model.forward(np.array([[1, 2]]))
        assert heads == []

    def test_head_lr_scale_set(self, decoder_backbone):
        model = MedusaLM(decoder_backbone, vocab_size=VOCAB, num_medusa_heads=2, head_lr_scale=4.0)
        head_params = [p for head in model.medusa_heads for p in head.parameters()]
        assert all(p.lr_scale == 4.0 for p in head_params)
        assert all(p.lr_scale == 1.0 for p in model.base_head.parameters())

    def test_backward_reaches_backbone(self):
        backbone = TinyCodeLlama(DecoderConfig(vocab_size=VOCAB, dim=16, num_layers=1, num_heads=2, max_seq_len=32))
        model = MedusaLM(backbone, vocab_size=VOCAB, num_medusa_heads=2)
        base, heads = model.forward(np.array([[1, 2, 3]]))
        model.zero_grad()
        model.backward(np.ones_like(base), [np.ones_like(h) for h in heads])
        backbone_grads = sum(float(np.abs(p.grad).sum()) for p in backbone.parameters())
        assert backbone_grads > 0

    def test_last_position_logits(self, decoder_backbone):
        model = MedusaLM(decoder_backbone, vocab_size=VOCAB, num_medusa_heads=2)
        base, heads = model.last_position_logits(np.array([[1, 2, 3]]))
        assert base.shape == (VOCAB,)
        assert all(h.shape == (VOCAB,) for h in heads)

    def test_parameters_include_all_heads(self, decoder_backbone):
        model = MedusaLM(decoder_backbone, vocab_size=VOCAB, num_medusa_heads=3)
        names = {p.name for p in model.parameters()}
        assert any("medusa0" in n for n in names)
        assert any("medusa2" in n for n in names)
        assert any("base_head" in n for n in names)

    def test_num_parameters_grows_with_heads(self, decoder_backbone):
        small = MedusaLM(decoder_backbone, vocab_size=VOCAB, num_medusa_heads=1)
        large = MedusaLM(decoder_backbone, vocab_size=VOCAB, num_medusa_heads=4)
        assert large.num_parameters() > small.num_parameters()


class TestGeneration:
    def test_greedy_picks_argmax(self):
        logits = np.array([0.1, 5.0, -2.0])
        assert sample_from_logits(logits, GenerationConfig.greedy_config()) == 1

    def test_sampling_deterministic_with_seed(self):
        logits = np.random.default_rng(0).normal(size=20)
        config = GenerationConfig.sampling_config(temperature=0.8, seed=7)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        assert sample_from_logits(logits, config, rng_a) == sample_from_logits(logits, config, rng_b)

    def test_sampling_respects_top_k(self):
        logits = np.array([10.0, 9.0, -100.0, -100.0])
        config = GenerationConfig(max_new_tokens=1, temperature=1.0, greedy=False, top_k=2, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert sample_from_logits(logits, config, rng) in (0, 1)

    def test_low_temperature_concentrates(self):
        logits = np.array([2.0, 1.0, 0.0])
        config = GenerationConfig(max_new_tokens=1, temperature=0.05, greedy=False, seed=0)
        rng = np.random.default_rng(0)
        samples = [sample_from_logits(logits, config, rng) for _ in range(25)]
        assert samples.count(0) >= 24

    def test_sampling_top_k_exceeding_vocab_is_clamped(self):
        """Regression: top_k > V used to raise ValueError from np.argpartition."""
        logits = np.array([2.0, 1.0, 0.5])
        config = GenerationConfig(max_new_tokens=1, temperature=1.0, greedy=False, top_k=10, seed=0)
        rng = np.random.default_rng(0)
        token = sample_from_logits(logits, config, rng)
        assert token in (0, 1, 2)
        # top_k == V is also a no-op truncation, not an error.
        config_eq = GenerationConfig(max_new_tokens=1, temperature=1.0, greedy=False, top_k=3, seed=0)
        assert sample_from_logits(logits, config_eq, np.random.default_rng(0)) == token

    def test_top_k_token_ids_sorted(self):
        logits = np.array([0.5, 3.0, 2.0, -1.0])
        np.testing.assert_array_equal(top_k_token_ids(logits, 3), [1, 2, 0])

    def test_top_k_larger_than_vocab(self):
        logits = np.array([1.0, 0.0])
        assert len(top_k_token_ids(logits, 10)) == 2

    def test_config_factories(self):
        greedy = GenerationConfig.greedy_config(50)
        sampled = GenerationConfig.sampling_config(0.6, 70, seed=3)
        assert greedy.greedy and greedy.max_new_tokens == 50
        assert not sampled.greedy and sampled.temperature == 0.6 and sampled.seed == 3
