"""Tests for the numpy NN substrate: functional ops, layers, gradients, optimizer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.nn.functional import (
    cross_entropy,
    cross_entropy_grad,
    entropy,
    gelu,
    gelu_grad,
    log_softmax,
    softmax,
)
from repro.nn.layers import CausalSelfAttention, Embedding, FeedForward, LayerNorm, Linear, Parameter
from repro.nn.optim import AdamW, WarmupCosineSchedule
from repro.nn.transformer import DecoderOnlyTransformer, EncoderDecoderTransformer


RNG = np.random.default_rng(0)


class TestFunctional:
    def test_softmax_sums_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0], [0.0, 0.0, 0.0]]))
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-6)

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([1000.0, 1001.0, 999.0]))
        assert np.all(np.isfinite(probs))

    def test_log_softmax_matches_log_of_softmax(self):
        x = np.array([0.5, -1.2, 3.3])
        np.testing.assert_allclose(log_softmax(x), np.log(softmax(x)), rtol=1e-6)

    def test_entropy_uniform_is_log_n(self):
        probs = np.full(8, 1 / 8)
        assert entropy(probs) == pytest.approx(np.log(8), rel=1e-6)

    def test_entropy_delta_is_zero(self):
        probs = np.zeros(8)
        probs[2] = 1.0
        assert entropy(probs) == pytest.approx(0.0, abs=1e-9)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, _, count = cross_entropy(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert count == 1

    def test_cross_entropy_ignore_index(self):
        logits = np.zeros((3, 4))
        targets = np.array([1, 9, 9])
        loss, _, count = cross_entropy(logits, targets, ignore_index=9)
        assert count == 1
        assert loss == pytest.approx(np.log(4), rel=1e-6)

    def test_cross_entropy_all_ignored(self):
        logits = np.zeros((2, 4))
        loss, _, count = cross_entropy(logits, np.array([9, 9]), ignore_index=9)
        assert loss == 0.0 and count == 0

    def test_cross_entropy_grad_zero_at_ignored_positions(self):
        logits = np.random.default_rng(0).normal(size=(3, 5))
        targets = np.array([1, 9, 2])
        _, probs, _ = cross_entropy(logits, targets, ignore_index=9)
        grad = cross_entropy_grad(probs, targets, ignore_index=9)
        assert np.allclose(grad[1], 0.0)
        assert not np.allclose(grad[0], 0.0)

    def test_cross_entropy_grad_numerical(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(2, 4))
        targets = np.array([1, 3])
        _, probs, _ = cross_entropy(logits, targets)
        grad = cross_entropy_grad(probs, targets)
        eps = 1e-5
        for i in range(2):
            for j in range(4):
                plus = logits.copy()
                plus[i, j] += eps
                minus = logits.copy()
                minus[i, j] -= eps
                numeric = (cross_entropy(plus, targets)[0] - cross_entropy(minus, targets)[0]) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-4)

    def test_gelu_grad_numerical(self):
        x = np.linspace(-3, 3, 13)
        eps = 1e-5
        numeric = (gelu(x + eps) - gelu(x - eps)) / (2 * eps)
        np.testing.assert_allclose(gelu_grad(x), numeric, atol=1e-4)


def _numeric_gradient(function, array, epsilon=1e-3):
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = function()
        flat[i] = original - epsilon
        minus = function()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * epsilon)
    return grad


class TestLayerGradients:
    def test_linear_gradients(self):
        rng = np.random.default_rng(2)
        layer = Linear(4, 3, rng)
        x = rng.normal(size=(2, 5, 4)).astype(np.float32)
        target_grad = rng.normal(size=(2, 5, 3)).astype(np.float32)

        def loss():
            return float(np.sum(layer.forward(x) * target_grad))

        layer.zero_grad()
        layer.forward(x)
        dx = layer.backward(target_grad)

        numeric_w = _numeric_gradient(loss, layer.weight.data)
        np.testing.assert_allclose(layer.weight.grad, numeric_w, rtol=5e-2, atol=5e-2)
        numeric_x = _numeric_gradient(loss, x)
        np.testing.assert_allclose(dx, numeric_x, rtol=5e-2, atol=5e-2)

    def test_layernorm_gradients(self):
        rng = np.random.default_rng(3)
        layer = LayerNorm(6)
        x = rng.normal(size=(2, 3, 6)).astype(np.float32)
        target_grad = rng.normal(size=(2, 3, 6)).astype(np.float32)

        def loss():
            return float(np.sum(layer.forward(x) * target_grad))

        layer.zero_grad()
        layer.forward(x)
        dx = layer.backward(target_grad)
        numeric_x = _numeric_gradient(loss, x)
        np.testing.assert_allclose(dx, numeric_x, rtol=5e-2, atol=5e-2)

    def test_attention_gradients(self):
        rng = np.random.default_rng(4)
        layer = CausalSelfAttention(8, 2, rng)
        x = rng.normal(size=(1, 4, 8)).astype(np.float32)
        target_grad = rng.normal(size=(1, 4, 8)).astype(np.float32)

        def loss():
            return float(np.sum(layer.forward(x) * target_grad))

        layer.zero_grad()
        layer.forward(x)
        dx = layer.backward(target_grad)
        numeric_x = _numeric_gradient(loss, x)
        np.testing.assert_allclose(dx, numeric_x, rtol=5e-2, atol=5e-2)

    def test_feedforward_gradients(self):
        rng = np.random.default_rng(5)
        layer = FeedForward(6, 12, rng)
        x = rng.normal(size=(1, 3, 6)).astype(np.float32)
        target_grad = rng.normal(size=(1, 3, 6)).astype(np.float32)

        def loss():
            return float(np.sum(layer.forward(x) * target_grad))

        layer.zero_grad()
        layer.forward(x)
        dx = layer.backward(target_grad)
        numeric_x = _numeric_gradient(loss, x)
        np.testing.assert_allclose(dx, numeric_x, rtol=5e-2, atol=5e-2)

    def test_embedding_accumulates_gradient(self):
        rng = np.random.default_rng(6)
        layer = Embedding(10, 4, rng)
        ids = np.array([[1, 1, 2]])
        layer.forward(ids)
        layer.backward(np.ones((1, 3, 4), dtype=np.float32))
        assert np.allclose(layer.weight.grad[1], 2.0)
        assert np.allclose(layer.weight.grad[2], 1.0)
        assert np.allclose(layer.weight.grad[3], 0.0)


class TestAttentionProperties:
    def test_causal_mask_blocks_future(self):
        rng = np.random.default_rng(7)
        layer = CausalSelfAttention(8, 2, rng, causal=True)
        x = rng.normal(size=(1, 5, 8)).astype(np.float32)
        out_full = layer.forward(x)
        # Changing the last position must not change earlier outputs.
        x_modified = x.copy()
        x_modified[0, -1] += 10.0
        out_modified = layer.forward(x_modified)
        np.testing.assert_allclose(out_full[0, :-1], out_modified[0, :-1], atol=1e-5)

    def test_non_causal_attention_sees_future(self):
        rng = np.random.default_rng(8)
        layer = CausalSelfAttention(8, 2, rng, causal=False)
        x = rng.normal(size=(1, 5, 8)).astype(np.float32)
        out_full = layer.forward(x)
        x_modified = x.copy()
        x_modified[0, -1] += 10.0
        out_modified = layer.forward(x_modified)
        assert not np.allclose(out_full[0, 0], out_modified[0, 0], atol=1e-5)

    def test_dim_must_divide_heads(self):
        with pytest.raises(ValueError):
            CausalSelfAttention(7, 2, np.random.default_rng(0))


class TestTransformers:
    def test_decoder_only_shapes(self):
        model = DecoderOnlyTransformer(vocab_size=50, dim=16, num_layers=2, num_heads=2, max_seq_len=32)
        hidden = model.forward(np.array([[1, 2, 3, 4]]))
        assert hidden.shape == (1, 4, 16)

    def test_decoder_only_accepts_1d_input(self):
        model = DecoderOnlyTransformer(vocab_size=50, dim=16, num_layers=1, num_heads=2, max_seq_len=32)
        assert model.forward(np.array([1, 2, 3])).shape == (1, 3, 16)

    def test_decoder_only_rejects_long_sequences(self):
        model = DecoderOnlyTransformer(vocab_size=10, dim=8, num_layers=1, num_heads=2, max_seq_len=4)
        with pytest.raises(ValueError):
            model.forward(np.arange(8)[None, :])

    def test_decoder_causality_end_to_end(self):
        model = DecoderOnlyTransformer(vocab_size=20, dim=16, num_layers=2, num_heads=2, max_seq_len=16, seed=1)
        ids = np.array([[1, 2, 3, 4, 5]])
        hidden_full = model.forward(ids)
        ids_changed = ids.copy()
        ids_changed[0, -1] = 9
        hidden_changed = model.forward(ids_changed)
        np.testing.assert_allclose(hidden_full[0, :-1], hidden_changed[0, :-1], atol=1e-5)

    def test_decoder_backward_populates_gradients(self):
        model = DecoderOnlyTransformer(vocab_size=30, dim=16, num_layers=1, num_heads=2, max_seq_len=16)
        hidden = model.forward(np.array([[1, 2, 3]]))
        model.zero_grad()
        model.backward(np.ones_like(hidden))
        grads = [np.abs(p.grad).sum() for p in model.parameters()]
        assert sum(g > 0 for g in grads) > len(grads) // 2

    def test_encoder_decoder_shapes(self):
        model = EncoderDecoderTransformer(vocab_size=40, dim=16, num_encoder_layers=1, num_decoder_layers=1, num_heads=2, max_seq_len=32)
        hidden = model.forward(np.array([[1, 2, 3]]), np.array([[5, 6, 7, 8]]))
        assert hidden.shape == (1, 3, 16)

    def test_encoder_decoder_requires_encode_first(self):
        model = EncoderDecoderTransformer(vocab_size=40, dim=16, max_seq_len=32)
        with pytest.raises(RuntimeError):
            model.forward(np.array([[1, 2]]))

    def test_encoder_decoder_cached_memory_reuse(self):
        model = EncoderDecoderTransformer(vocab_size=40, dim=16, max_seq_len=32, seed=3)
        model.encode(np.array([[1, 2, 3]]))
        first = model.forward(np.array([[4, 5]]))
        second = model.forward(np.array([[4, 5]]))
        np.testing.assert_allclose(first, second, atol=1e-6)

    def test_encoder_output_depends_on_prompt(self):
        model = EncoderDecoderTransformer(vocab_size=40, dim=16, max_seq_len=32, seed=4)
        out_a = model.forward(np.array([[4, 5]]), np.array([[1, 2, 3]]))
        out_b = model.forward(np.array([[4, 5]]), np.array([[7, 8, 9]]))
        assert not np.allclose(out_a, out_b, atol=1e-5)

    def test_encoder_decoder_backward_runs(self):
        model = EncoderDecoderTransformer(vocab_size=30, dim=16, max_seq_len=16)
        hidden = model.forward(np.array([[1, 2, 3]]), np.array([[4, 5]]))
        model.zero_grad()
        model.backward(np.ones_like(hidden))
        assert any(np.abs(p.grad).sum() > 0 for p in model.parameters())

    def test_num_parameters_positive(self):
        model = DecoderOnlyTransformer(vocab_size=30, dim=16, num_layers=1, num_heads=2)
        assert model.num_parameters() > 30 * 16


class TestOptim:
    def test_schedule_warmup_then_decay(self):
        schedule = WarmupCosineSchedule(base_lr=1.0, warmup_steps=10, total_steps=100)
        assert schedule.lr_at(0) == pytest.approx(0.1)
        assert schedule.lr_at(9) == pytest.approx(1.0)
        assert schedule.lr_at(99) < schedule.lr_at(10)
        assert schedule.lr_at(99) >= 0.1 * 1.0 - 1e-6

    def test_schedule_rejects_bad_total(self):
        with pytest.raises(ValueError):
            WarmupCosineSchedule(1.0, 0, 0)

    def test_adamw_reduces_quadratic_loss(self):
        param = Parameter(np.array([5.0, -3.0], dtype=np.float32))
        optimizer = AdamW([param], lr=0.1, weight_decay=0.0)
        for _ in range(200):
            param.zero_grad()
            param.grad += 2 * param.data
            optimizer.step()
        assert np.all(np.abs(param.data) < 0.1)

    def test_adamw_lr_scale_applies(self):
        fast = Parameter(np.array([1.0], dtype=np.float32), lr_scale=4.0)
        slow = Parameter(np.array([1.0], dtype=np.float32), lr_scale=1.0)
        optimizer = AdamW([fast, slow], lr=0.01, weight_decay=0.0)
        fast.grad += 1.0
        slow.grad += 1.0
        optimizer.step()
        assert abs(1.0 - fast.data[0]) > abs(1.0 - slow.data[0])

    def test_gradient_clipping(self):
        param = Parameter(np.zeros(4, dtype=np.float32))
        optimizer = AdamW([param], max_grad_norm=1.0)
        param.grad += 100.0
        norm = optimizer.clip_gradients()
        assert norm > 1.0
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-5)

    def test_zero_grad(self):
        param = Parameter(np.zeros(3, dtype=np.float32))
        optimizer = AdamW([param])
        param.grad += 5.0
        optimizer.zero_grad()
        assert np.all(param.grad == 0)


@given(st.lists(st.floats(min_value=-50, max_value=50), min_size=2, max_size=20))
def test_softmax_probabilities_property(logits):
    """Property: softmax output is a probability vector for any finite logits."""
    probs = softmax(np.array(logits))
    assert np.all(probs >= 0)
    assert probs.sum() == pytest.approx(1.0, rel=1e-5)


@given(st.integers(min_value=2, max_value=64))
def test_entropy_bounded_by_log_n(n):
    """Property: entropy of any distribution over n outcomes is <= log(n)."""
    rng = np.random.default_rng(n)
    probs = rng.dirichlet(np.ones(n))
    assert entropy(probs) <= np.log(n) + 1e-6
