"""Tests for the Verilog parser and AST."""

import pytest

from repro.verilog import ast_nodes as ast
from repro.verilog.parser import ParseError, parse_module, parse_source


class TestModuleStructure:
    def test_simple_module(self, sample_design):
        module = parse_module(sample_design)
        assert module.name == "data_register"
        assert [p.name for p in module.ports] == ["clk", "data_in", "data_out"]

    def test_ansi_port_directions(self, sample_design):
        module = parse_module(sample_design)
        directions = {p.name: p.direction for p in module.ports}
        assert directions == {"clk": "input", "data_in": "input", "data_out": "output"}

    def test_port_ranges(self, sample_design):
        module = parse_module(sample_design)
        data_in = module.ports[1]
        assert data_in.range is not None

    def test_multiple_modules(self):
        source = "module a; endmodule\nmodule b; endmodule"
        tree = parse_source(source)
        assert [m.name for m in tree.modules] == ["a", "b"]

    def test_source_file_module_lookup(self):
        tree = parse_source("module a; endmodule")
        assert tree.module("a").name == "a"
        with pytest.raises(KeyError):
            tree.module("missing")

    def test_module_with_parameters_in_header(self, sample_counter):
        module = parse_module(sample_counter)
        assert module.parameters[0].names == ["WIDTH"]

    def test_non_ansi_ports(self):
        source = """
module adder(a, b, sum);
    input [3:0] a;
    input [3:0] b;
    output [3:0] sum;
    assign sum = a + b;
endmodule
"""
        module = parse_module(source)
        assert [p.name for p in module.ports] == ["a", "b", "sum"]
        declarations = [i for i in module.items if isinstance(i, ast.PortDeclaration)]
        assert len(declarations) == 3

    def test_empty_source_raises(self):
        with pytest.raises(ParseError):
            parse_source("   ")

    def test_missing_endmodule_raises(self):
        with pytest.raises(ParseError):
            parse_source("module a; wire x;")

    def test_garbage_in_module_raises(self):
        with pytest.raises(ParseError):
            parse_source("module a; 123abc!! endmodule")

    def test_timescale_directive_ignored(self):
        source = "`timescale 1ns / 1ps\nmodule a; endmodule"
        assert parse_module(source).name == "a"


class TestDeclarations:
    def test_wire_declaration_with_init(self):
        module = parse_module("module m; wire [7:0] x = 8'd5; endmodule")
        decl = module.items[0]
        assert isinstance(decl, ast.NetDeclaration)
        assert decl.net_type == "wire"
        assert decl.initializers[0] is not None

    def test_reg_array_declaration(self):
        module = parse_module("module m; reg [7:0] mem [0:15]; endmodule")
        decl = module.items[0]
        assert decl.array_ranges[0] is not None

    def test_multiple_names_one_declaration(self):
        module = parse_module("module m; reg a, b, c; endmodule")
        assert module.items[0].names == ["a", "b", "c"]

    def test_integer_declaration(self):
        module = parse_module("module m; integer i; endmodule")
        assert module.items[0].net_type == "integer"

    def test_localparam(self):
        module = parse_module("module m; localparam IDLE = 2'd0, RUN = 2'd1; endmodule")
        decl = module.items[0]
        assert decl.kind == "localparam"
        assert decl.names == ["IDLE", "RUN"]

    def test_signed_declaration(self):
        module = parse_module("module m; reg signed [7:0] x; endmodule")
        assert module.items[0].signed

    def test_genvar(self):
        module = parse_module("module m; genvar i; endmodule")
        assert isinstance(module.items[0], ast.GenvarDeclaration)


class TestBehaviouralItems:
    def test_always_block(self, sample_design):
        module = parse_module(sample_design)
        always = [i for i in module.items if isinstance(i, ast.AlwaysBlock)]
        assert len(always) == 1

    def test_initial_block(self):
        module = parse_module("module m; initial begin end endmodule")
        assert isinstance(module.items[0], ast.InitialBlock)

    def test_continuous_assign(self):
        module = parse_module("module m(input a, input b, output y); assign y = a & b; endmodule")
        assigns = [i for i in module.items if isinstance(i, ast.ContinuousAssign)]
        assert len(assigns) == 1

    def test_multiple_assigns_in_one_statement(self):
        module = parse_module("module m; wire a, b; assign a = 1'b0, b = 1'b1; endmodule")
        assigns = [i for i in module.items if isinstance(i, ast.ContinuousAssign)]
        assert len(assigns[0].assignments) == 2

    def test_gate_instance(self):
        module = parse_module("module m(input a, input b, output y); and g1(y, a, b); endmodule")
        gates = [i for i in module.items if isinstance(i, ast.GateInstance)]
        assert gates[0].gate_type == "and"
        assert len(gates[0].terminals) == 3

    def test_module_instance_named_connections(self):
        source = "module m; wire c, r, q; dff u0(.clk(c), .rst(r), .q(q)); endmodule"
        module = parse_module(source)
        instance = [i for i in module.items if isinstance(i, ast.ModuleInstance)][0]
        assert instance.module_name == "dff"
        assert instance.instance_name == "u0"
        assert {c.name for c in instance.connections} == {"clk", "rst", "q"}

    def test_module_instance_positional_connections(self):
        module = parse_module("module m; wire a, b, y; my_and u1(y, a, b); endmodule")
        instance = [i for i in module.items if isinstance(i, ast.ModuleInstance)][0]
        assert all(c.name is None for c in instance.connections)

    def test_module_instance_parameter_override(self):
        module = parse_module("module m; wire [7:0] c; counter #(.WIDTH(8)) u0(.count(c)); endmodule")
        instance = [i for i in module.items if isinstance(i, ast.ModuleInstance)][0]
        assert instance.parameter_overrides[0].name == "WIDTH"

    def test_function_declaration(self):
        source = """
module m;
    function [7:0] increment;
        input [7:0] value;
        begin
            increment = value + 1;
        end
    endfunction
endmodule
"""
        module = parse_module(source)
        functions = [i for i in module.items if isinstance(i, ast.FunctionDeclaration)]
        assert functions[0].name == "increment"

    def test_task_declaration(self):
        source = """
module m;
    task check;
        input [7:0] expected;
        begin
            $display("%d", expected);
        end
    endtask
endmodule
"""
        module = parse_module(source)
        tasks = [i for i in module.items if isinstance(i, ast.TaskDeclaration)]
        assert tasks[0].name == "check"

    def test_generate_block(self):
        source = "module m; generate wire g; assign g = 1'b1; endgenerate endmodule"
        module = parse_module(source)
        blocks = [i for i in module.items if isinstance(i, ast.GenerateBlock)]
        assert len(blocks) == 1


class TestStatements:
    def _body(self, statements: str) -> ast.Statement:
        module = parse_module(f"module m; reg [7:0] x, y; integer i; always @* begin {statements} end endmodule")
        always = [i for i in module.items if isinstance(i, ast.AlwaysBlock)][0]
        return always.body

    def test_if_else(self):
        body = self._body("if (x) y = 1; else y = 0;")
        statement = body.body.statements[0]
        assert isinstance(statement, ast.IfStatement)
        assert statement.else_body is not None

    def test_nested_if(self):
        body = self._body("if (x) if (y) x = 0; else y = 1;")
        outer = body.body.statements[0]
        assert isinstance(outer.then_body, ast.IfStatement)

    def test_case_statement(self):
        body = self._body("case (x) 1: y = 1; 2, 3: y = 2; default: y = 0; endcase")
        case = body.body.statements[0]
        assert isinstance(case, ast.CaseStatement)
        assert len(case.items) == 3
        assert case.items[1].patterns and len(case.items[1].patterns) == 2
        assert case.items[2].is_default

    def test_casez(self):
        body = self._body("casez (x) 8'b1???????: y = 1; default: y = 0; endcase")
        assert body.body.statements[0].kind == "casez"

    def test_for_loop(self):
        body = self._body("for (i = 0; i < 8; i = i + 1) y = y + 1;")
        loop = body.body.statements[0]
        assert isinstance(loop, ast.ForStatement)

    def test_while_loop(self):
        body = self._body("while (x > 0) x = x - 1;")
        assert isinstance(body.body.statements[0], ast.WhileStatement)

    def test_repeat(self):
        body = self._body("repeat (4) y = y + 1;")
        assert isinstance(body.body.statements[0], ast.RepeatStatement)

    def test_blocking_vs_nonblocking(self):
        body = self._body("x = 1; y <= 2;")
        statements = body.body.statements
        assert statements[0].blocking is True
        assert statements[1].blocking is False

    def test_nonblocking_to_zero(self):
        body = self._body("if (x) y <= 0;")
        assignment = body.body.statements[0].then_body
        assert isinstance(assignment, ast.Assignment)
        assert assignment.blocking is False

    def test_system_task(self):
        body = self._body('$display("value=%d", x);')
        assert isinstance(body.body.statements[0], ast.SystemTaskCall)

    def test_named_block(self):
        body = self._body("begin : inner x = 1; end")
        inner = body.body.statements[0]
        assert inner.name == "inner"

    def test_concatenation_target(self):
        body = self._body("{x, y} = 16'hABCD;")
        assignment = body.body.statements[0]
        assert isinstance(assignment.target, ast.Concatenation)

    def test_delay_statement_in_initial(self):
        module = parse_module("module m; reg c; initial begin #5 c = 1; #10; end endmodule")
        block = module.items[1].body
        assert isinstance(block.statements[0], ast.DelayStatement)

    def test_event_control_posedge(self, sample_counter):
        module = parse_module(sample_counter)
        always = [i for i in module.items if isinstance(i, ast.AlwaysBlock)][0]
        event = always.body
        assert isinstance(event, ast.EventControlStatement)
        assert event.controls[0].edge == "posedge"
        assert len(event.controls) == 2

    def test_always_star(self):
        module = parse_module("module m; reg y; wire a; always @* y = a; endmodule")
        always = [i for i in module.items if isinstance(i, ast.AlwaysBlock)][0]
        assert always.body.is_star

    def test_always_star_parenthesised(self):
        module = parse_module("module m; reg y; wire a; always @(*) y = a; endmodule")
        assert [i for i in module.items if isinstance(i, ast.AlwaysBlock)][0].body.is_star

    def test_wait_statement(self):
        module = parse_module("module m; reg x; initial begin wait (x) $finish; end endmodule")
        block = module.items[1].body
        assert isinstance(block.statements[0], ast.WaitStatement)

    def test_forever_loop(self):
        module = parse_module("module m; reg clk; initial forever #5 clk = ~clk; endmodule")
        assert isinstance(module.items[1].body, ast.ForeverStatement)


class TestExpressions:
    def _expr(self, text: str) -> ast.Expression:
        module = parse_module(f"module m; wire [31:0] a, b, c, y; assign y = {text}; endmodule")
        assign = [i for i in module.items if isinstance(i, ast.ContinuousAssign)][0]
        return assign.assignments[0][1]

    def test_precedence_mul_over_add(self):
        expr = self._expr("a + b * c")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_logical(self):
        expr = self._expr("a == b && c")
        assert expr.op == "&&"

    def test_parentheses_override(self):
        expr = self._expr("(a + b) * c")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_ternary(self):
        expr = self._expr("a ? b : c")
        assert isinstance(expr, ast.Conditional)

    def test_nested_ternary(self):
        expr = self._expr("a ? b : c ? a : b")
        assert isinstance(expr.if_false, ast.Conditional)

    def test_unary_reduction(self):
        expr = self._expr("^a")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.op == "^"

    def test_concatenation(self):
        expr = self._expr("{a, b, 2'b01}")
        assert isinstance(expr, ast.Concatenation)
        assert len(expr.parts) == 3

    def test_replication(self):
        expr = self._expr("{4{a}}")
        assert isinstance(expr, ast.Replication)

    def test_bit_select(self):
        expr = self._expr("a[3]")
        assert isinstance(expr, ast.BitSelect)

    def test_part_select(self):
        expr = self._expr("a[7:4]")
        assert isinstance(expr, ast.PartSelect)

    def test_indexed_part_select(self):
        expr = self._expr("a[b +: 4]")
        assert isinstance(expr, ast.PartSelect)
        assert expr.mode == "+:"

    def test_function_call_expression(self):
        expr = self._expr("my_func(a, b)")
        assert isinstance(expr, ast.FunctionCall)
        assert len(expr.args) == 2

    def test_system_function_call(self):
        expr = self._expr("$clog2(a)")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "$clog2"

    def test_number_parsing(self):
        expr = self._expr("8'hA5")
        assert isinstance(expr, ast.Number)
        assert expr.width == 8
        assert expr.base == "h"
        assert expr.value_text == "A5"

    def test_signed_number_literal(self):
        expr = self._expr("8'sd12")
        assert expr.signed

    def test_hierarchical_identifier(self):
        expr = self._expr("dut.internal_count")
        assert isinstance(expr, ast.Identifier)
        assert expr.name == "dut.internal_count"


class TestAstTraversal:
    def test_walk_visits_all_identifiers(self, sample_design):
        module = parse_module(sample_design)
        identifiers = {n.name for n in module.walk() if isinstance(n, ast.Identifier)}
        assert {"clk", "data_in", "data_out"} <= identifiers

    def test_children_of_binary_op(self):
        expr = ast.BinaryOp(op="+", left=ast.Identifier(name="a"), right=ast.Identifier(name="b"))
        children = list(expr.children())
        assert len(children) == 2

    def test_continuous_assign_children(self):
        assign = ast.ContinuousAssign(assignments=[(ast.Identifier(name="y"), ast.Identifier(name="a"))])
        assert len(list(assign.children())) == 2
