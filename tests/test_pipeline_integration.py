"""Integration tests: the full pipeline, speed measurement and the quality runner."""

import pytest

from repro.core.decoding import DecodingStrategy
from repro.core.pipeline import METHOD_STRATEGIES, PipelineConfig, VerilogSpecPipeline
from repro.evalbench.problems import ProblemSuite
from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.runner import EvaluationRunner
from repro.evalbench.speed import measure_speed, speedup
from repro.verilog.fragments import FRAG
from repro.verilog.syntax import check_syntax


class TestPipelinePreparation:
    def test_prepare_produces_examples_and_tokenizer(self, tiny_pipeline):
        assert len(tiny_pipeline.examples) > 5
        assert tiny_pipeline.tokenizer is not None
        assert tiny_pipeline.tokenizer.vocab_size > 100

    def test_examples_have_frag_annotation(self, tiny_pipeline):
        assert all(FRAG in e.output_with_frag for e in tiny_pipeline.examples)
        assert all(FRAG not in e.output for e in tiny_pipeline.examples)

    def test_examples_are_valid_verilog(self, tiny_pipeline):
        for example in tiny_pipeline.examples[:10]:
            assert check_syntax(example.output).ok

    def test_all_methods_trained(self, tiny_pipeline):
        assert set(tiny_pipeline.models) == {"ours", "medusa", "ntp"}
        assert set(tiny_pipeline.histories) == {"ours", "medusa", "ntp"}

    def test_ntp_model_has_no_heads(self, tiny_pipeline):
        assert tiny_pipeline.models["ntp"].num_medusa_heads == 0
        assert tiny_pipeline.models["ours"].num_medusa_heads > 0

    def test_method_strategies_mapping(self):
        assert METHOD_STRATEGIES["ours"] is DecodingStrategy.OURS
        assert METHOD_STRATEGIES["medusa"] is DecodingStrategy.MEDUSA
        assert METHOD_STRATEGIES["ntp"] is DecodingStrategy.NTP

    def test_decoder_for_unknown_method_raises(self, tiny_pipeline):
        with pytest.raises(KeyError):
            tiny_pipeline.decoder_for("unknown")

    def test_train_method_rejects_unknown(self, tiny_pipeline):
        with pytest.raises(ValueError):
            tiny_pipeline.train_method("bogus")

    def test_training_samples_differ_between_methods(self, tiny_pipeline):
        ours = tiny_pipeline.training_samples("ours")
        ntp = tiny_pipeline.training_samples("ntp")
        frag_id = tiny_pipeline.tokenizer.vocab.frag_id
        assert any(frag_id in s.target_ids for s in ours)
        assert all(frag_id not in s.target_ids for s in ntp)

    def test_data_fraction_subsets(self):
        config = PipelineConfig(corpus_items=30, vocab_size=300, data_fraction=0.5)
        pipeline = VerilogSpecPipeline(config)
        artifacts = pipeline.prepare()
        full = VerilogSpecPipeline(PipelineConfig(corpus_items=30, vocab_size=300)).prepare()
        assert len(artifacts.examples) <= len(full.examples)
        assert len(artifacts.examples) >= len(full.examples) // 2 - 1

    def test_build_model_requires_prepare(self):
        pipeline = VerilogSpecPipeline(PipelineConfig())
        with pytest.raises(RuntimeError):
            pipeline.build_model("ours")


class TestSpeedMeasurement:
    def test_speed_report_fields(self, tiny_pipeline):
        decoder = tiny_pipeline.decoder_for("ours")
        prompts = [tiny_pipeline.examples[0].prompt_text()]
        report = measure_speed(decoder, prompts, max_new_tokens=16, include_sampling=True, label="ours")
        assert report.num_outputs == 2
        assert report.mean_tokens_per_second > 0
        assert report.mean_tokens_per_step >= 1.0
        assert report.label == "ours"

    def test_speedup_vs_ntp_in_steps(self, tiny_pipeline):
        prompts = [tiny_pipeline.examples[0].prompt_text()]
        ours = measure_speed(tiny_pipeline.decoder_for("ours"), prompts, max_new_tokens=24, include_sampling=False)
        ntp = measure_speed(tiny_pipeline.decoder_for("ntp"), prompts, max_new_tokens=24, include_sampling=False)
        assert speedup(ours, ntp, use_steps=True) >= 1.0

    def test_speedup_handles_zero_baseline(self, tiny_pipeline):
        from repro.evalbench.speed import SpeedReport

        empty = SpeedReport("x", 0, 0.0, 0.0, 0.0, 0.0, 0.0)
        real = SpeedReport("y", 1, 10.0, 2.0, 5.0, 3.0, 0.5)
        assert speedup(real, empty) == 0.0
        assert speedup(real, empty, use_steps=True) == 0.0

    def test_empty_prompt_list(self, tiny_pipeline):
        report = measure_speed(tiny_pipeline.decoder_for("ntp"), [], max_new_tokens=8)
        assert report.num_outputs == 0


class TestQualityRunner:
    @pytest.fixture(scope="class")
    def mini_suite(self):
        suite = rtllm_suite()
        problems = [suite.get("data_register_4"), suite.get("half_adder")]
        return ProblemSuite(name="RTLLM-mini", problems=problems)

    def test_runner_produces_report(self, tiny_pipeline, mini_suite):
        runner = EvaluationRunner(
            tiny_pipeline.decoder_for("ours"), samples_per_prompt=2, max_new_tokens=48, k_values=(1, 2)
        )
        report = runner.evaluate_suite(mini_suite, label="ours")
        assert report.num_prompts == 2
        assert set(report.syntax_pass_at_k) == {1, 2}
        assert 0.0 <= report.function_pass_rate <= 1.0
        assert 0.0 <= report.syntax_pass_rate <= 1.0
        row = report.row("function")
        assert set(row) == {"pass@1", "pass@5", "pass@10", "pass_rate"}

    def test_function_never_exceeds_syntax(self, tiny_pipeline, mini_suite):
        runner = EvaluationRunner(
            tiny_pipeline.decoder_for("ntp"), samples_per_prompt=2, max_new_tokens=48, k_values=(1,)
        )
        report = runner.evaluate_suite(mini_suite, label="ntp")
        assert report.function_pass_at_k[1] <= report.syntax_pass_at_k[1] + 1e-9
        assert report.function_pass_rate <= report.syntax_pass_rate + 1e-9

    def test_reference_designs_score_perfectly(self, tiny_pipeline, mini_suite):
        """Grading the golden designs through the runner yields pass@k == 1."""
        runner = EvaluationRunner(tiny_pipeline.decoder_for("ours"), samples_per_prompt=2, k_values=(1,))
        evaluations = [
            runner.evaluate_problem(problem, samples=[problem.reference, problem.reference]) for problem in mini_suite
        ]
        assert all(all(e.functional_flags) for e in evaluations)
        assert all(all(e.syntax_flags) for e in evaluations)

    def test_generated_samples_count(self, tiny_pipeline, mini_suite):
        runner = EvaluationRunner(tiny_pipeline.decoder_for("medusa"), samples_per_prompt=3, max_new_tokens=32)
        samples = runner.generate_samples(mini_suite[0])
        assert len(samples) == 3
        assert all(isinstance(s, str) for s in samples)
