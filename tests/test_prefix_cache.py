"""Unit tests for the cross-request prefix cache (trie, LRU, segments).

Engine-level reuse (token identity, hit accounting through serving) is
covered in ``tests/test_serving.py``; this file exercises the
:class:`~repro.serving.prefix_cache.PrefixCache` data structure and the
:class:`~repro.nn.kv_cache.KVSegment` gather/splice operations in isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.kv_cache import KVCache, KVSegment
from repro.nn.kv_pool import KVBlockPool, PagedKVCache
from repro.serving.prefix_cache import PrefixCache

LAYERS, HEADS, HEAD_DIM = 2, 2, 4
BYTES_PER_TOKEN = 2 * LAYERS * HEADS * HEAD_DIM * 4  # K and V, float32
BLOCK = 4
BLOCK_NBYTES = BLOCK * BYTES_PER_TOKEN  # one pool block: K and V, all layers


def make_segment(length: int, seed: int = 0) -> KVSegment:
    rng = np.random.default_rng(seed)
    shape = (HEADS, length, HEAD_DIM)
    return KVSegment(
        [rng.normal(size=shape).astype(np.float32) for _ in range(LAYERS)],
        [rng.normal(size=shape).astype(np.float32) for _ in range(LAYERS)],
    )


class TestKVSegment:
    def test_geometry_and_nbytes(self):
        segment = make_segment(5)
        assert segment.num_layers == LAYERS
        assert segment.num_heads == HEADS
        assert segment.head_dim == HEAD_DIM
        assert segment.length == 5
        assert segment.nbytes == 5 * BYTES_PER_TOKEN

    def test_head_is_a_view_of_the_prefix(self):
        segment = make_segment(6)
        head = segment.head(4)
        assert head.length == 4
        np.testing.assert_array_equal(head.k_layers[0], segment.k_layers[0][:, :4])
        assert head.k_layers[0].base is not None  # no copy

    def test_head_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            make_segment(3).head(4)

    def test_mismatched_layers_rejected(self):
        good = make_segment(3)
        with pytest.raises(ValueError, match="matching"):
            KVSegment(good.k_layers, good.v_layers[:1])


class TestGatherSplice:
    def _filled_cache(self, lengths, capacity=10, batch=None, seed=0) -> KVCache:
        rng = np.random.default_rng(seed)
        cache = KVCache(LAYERS, HEADS, HEAD_DIM, capacity=capacity, batch=batch or len(lengths))
        for layer in cache.layers:
            layer.k[...] = rng.normal(size=layer.k.shape).astype(np.float32)
            layer.v[...] = rng.normal(size=layer.v.shape).astype(np.float32)
            layer.lengths = np.asarray(lengths, dtype=np.int64)
        return cache

    def test_gather_then_splice_round_trips(self):
        source = self._filled_cache([7, 4])
        segment = source.gather_prefix(0, 5)
        assert segment.length == 5

        fresh = KVCache(LAYERS, HEADS, HEAD_DIM, capacity=10, batch=2)
        fresh.splice_prefix(1, segment)
        assert fresh.lengths.tolist() == [0, 5]
        for layer, src_layer in zip(fresh.layers, source.layers):
            np.testing.assert_array_equal(layer.k[1, :, :5], src_layer.k[0, :, :5])
            np.testing.assert_array_equal(layer.v[1, :, :5], src_layer.v[0, :, :5])

    def test_gather_is_a_detached_copy(self):
        source = self._filled_cache([6])
        segment = source.gather_prefix(0, 6)
        before = segment.k_layers[0].copy()
        source.layers[0].k[...] = 0.0
        np.testing.assert_array_equal(segment.k_layers[0], before)

    def test_splice_then_append_continues_at_segment_length(self):
        source = self._filled_cache([5])
        fresh = KVCache(LAYERS, HEADS, HEAD_DIM, capacity=10, batch=1)
        fresh.splice_prefix(0, source.gather_prefix(0, 5))
        rng = np.random.default_rng(1)
        k_new = rng.normal(size=(1, HEADS, 2, HEAD_DIM)).astype(np.float32)
        v_new = rng.normal(size=(1, HEADS, 2, HEAD_DIM)).astype(np.float32)
        fresh.layers[0].append(k_new, v_new)
        assert fresh.layers[0].lengths.tolist() == [7]
        np.testing.assert_array_equal(fresh.layers[0].k[0, :, 5:7], k_new[0])

    def test_gather_validates_row_and_length(self):
        cache = self._filled_cache([4])
        with pytest.raises(IndexError, match="out of range"):
            cache.gather_prefix(1, 2)
        with pytest.raises(ValueError, match="out of range"):
            cache.gather_prefix(0, 5)  # beyond the row's cached length
        with pytest.raises(ValueError, match="out of range"):
            cache.gather_prefix(0, -1)

    def test_splice_requires_fresh_row(self):
        source = self._filled_cache([5])
        occupied = self._filled_cache([3], seed=2)
        with pytest.raises(ValueError, match="fresh row"):
            occupied.splice_prefix(0, source.gather_prefix(0, 2))

    def test_splice_validates_geometry_and_capacity(self):
        source = self._filled_cache([5])
        segment = source.gather_prefix(0, 5)
        wrong_layers = KVCache(LAYERS + 1, HEADS, HEAD_DIM, capacity=10, batch=1)
        with pytest.raises(ValueError, match="layers"):
            wrong_layers.splice_prefix(0, segment)
        wrong_heads = KVCache(LAYERS, HEADS + 1, HEAD_DIM, capacity=10, batch=1)
        with pytest.raises(ValueError, match="geometry"):
            wrong_heads.splice_prefix(0, segment)
        tiny = KVCache(LAYERS, HEADS, HEAD_DIM, capacity=3, batch=1)
        with pytest.raises(ValueError, match="capacity"):
            tiny.splice_prefix(0, segment)


class TestPrefixCacheLookup:
    def test_exact_hit(self):
        cache = PrefixCache(max_tokens=100)
        assert cache.insert([1, 2, 3], make_segment(3))
        matched, segment = cache.lookup([1, 2, 3])
        assert matched == 3
        assert segment.length == 3
        assert cache.stats.hits == 1
        assert cache.stats.tokens_reused == 3

    def test_partial_hit_through_shared_preamble(self):
        """A retained prompt answers lookups for prompts sharing only a prefix."""
        cache = PrefixCache(max_tokens=100)
        cache.insert([1, 2, 3, 4, 5], make_segment(5))
        matched, segment = cache.lookup([1, 2, 3, 9, 9, 9])
        assert matched == 3
        assert segment.length == 3
        np.testing.assert_array_equal(
            segment.k_layers[0], make_segment(5).k_layers[0][:, :3]
        )

    def test_miss_counts(self):
        cache = PrefixCache(max_tokens=100)
        cache.insert([1, 2, 3], make_segment(3))
        matched, segment = cache.lookup([7, 8])
        assert matched == 0 and segment is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0
        cache.lookup([1, 2])
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_limit_caps_the_match(self):
        """The engine passes limit=len(prompt)-1 so a full-prompt hit still
        leaves one token to prefill (the forward that yields last logits)."""
        cache = PrefixCache(max_tokens=100)
        cache.insert([1, 2, 3, 4], make_segment(4))
        matched, segment = cache.lookup([1, 2, 3, 4], limit=3)
        assert matched == 3
        assert segment.length == 3

    def test_longest_of_several_entries_wins(self):
        cache = PrefixCache(max_tokens=100)
        cache.insert([1, 2], make_segment(2, seed=1))
        cache.insert([1, 2, 3, 4], make_segment(4, seed=2))
        matched, _ = cache.lookup([1, 2, 3, 4, 5])
        assert matched == 4

    def test_empty_cache_lookup(self):
        cache = PrefixCache(max_tokens=10)
        assert cache.lookup([1, 2, 3]) == (0, None)


class TestPrefixCacheRetention:
    def test_lru_eviction_under_token_budget(self):
        cache = PrefixCache(max_tokens=6)
        cache.insert([1, 2, 3], make_segment(3))
        cache.insert([4, 5, 6], make_segment(3))
        assert cache.num_tokens == 6
        cache.insert([7, 8, 9], make_segment(3))  # evicts [1,2,3] (LRU)
        assert cache.num_tokens == 6
        assert cache.stats.evictions == 1
        assert cache.lookup([1, 2, 3])[0] == 0
        assert cache.lookup([4, 5, 6])[0] == 3
        assert cache.lookup([7, 8, 9])[0] == 3

    def test_lookup_refreshes_lru_order(self):
        cache = PrefixCache(max_tokens=6)
        cache.insert([1, 2, 3], make_segment(3))
        cache.insert([4, 5, 6], make_segment(3))
        cache.lookup([1, 2, 3])  # touch: [4,5,6] becomes LRU
        cache.insert([7, 8, 9], make_segment(3))
        assert cache.lookup([4, 5, 6])[0] == 0
        assert cache.lookup([1, 2, 3])[0] == 3

    def test_reinsert_refreshes_without_duplicating(self):
        cache = PrefixCache(max_tokens=6)
        cache.insert([1, 2, 3], make_segment(3))
        assert not cache.insert([1, 2, 3], make_segment(3))  # refresh only
        assert len(cache) == 1 and cache.num_tokens == 3
        assert cache.stats.insertions == 1

    def test_eviction_keeps_shared_trie_nodes_alive(self):
        """Evicting one entry must not break partial matches served by a
        surviving entry that shares its preamble."""
        cache = PrefixCache(max_tokens=10)
        cache.insert([1, 2, 3, 4], make_segment(4))
        cache.insert([1, 2, 9, 9, 9], make_segment(5))
        cache.insert([6, 7, 8, 6, 7], make_segment(5))  # evicts [1,2,3,4]
        assert cache.stats.evictions == 1
        matched, _ = cache.lookup([1, 2, 3, 4])
        assert matched == 2  # shared [1,2] preamble survives via the second entry
        assert cache.lookup([6, 7, 8])[0] == 3

    def test_oversized_prompt_not_retained(self):
        cache = PrefixCache(max_tokens=4)
        assert not cache.insert([1, 2, 3, 4, 5], make_segment(5))
        assert len(cache) == 0

    def test_byte_budget(self):
        cache = PrefixCache(max_tokens=1000, max_bytes=3 * BYTES_PER_TOKEN)
        cache.insert([1, 2], make_segment(2))
        cache.insert([3], make_segment(1))
        assert cache.num_bytes == 3 * BYTES_PER_TOKEN
        cache.insert([4], make_segment(1))  # over byte budget: evict LRU [1,2]
        assert cache.num_bytes == 2 * BYTES_PER_TOKEN
        assert cache.lookup([1, 2])[0] == 0
        assert not cache.insert([5, 6, 7, 8], make_segment(4))  # alone over byte budget

    def test_clear(self):
        cache = PrefixCache(max_tokens=100)
        cache.insert([1, 2, 3], make_segment(3))
        cache.insert([4, 5], make_segment(2))
        cache.clear()
        assert len(cache) == 0
        assert cache.num_tokens == 0 and cache.num_bytes == 0
        assert cache.lookup([1, 2, 3]) == (0, None)

    def test_validation(self):
        with pytest.raises(ValueError, match="max_tokens"):
            PrefixCache(max_tokens=0)
        with pytest.raises(ValueError, match="max_bytes"):
            PrefixCache(max_tokens=10, max_bytes=0)
        cache = PrefixCache(max_tokens=10)
        with pytest.raises(ValueError, match="positions"):
            cache.insert([1, 2, 3], make_segment(2))
        assert not cache.insert([], make_segment(0))

    def test_would_retain_precheck(self):
        """would_retain mirrors insert's decision (minus the byte budget) and
        refreshes LRU on exact duplicates, so the engine can skip gathering."""
        cache = PrefixCache(max_tokens=6)
        assert cache.would_retain([1, 2, 3])
        cache.insert([1, 2, 3], make_segment(3))
        assert not cache.would_retain([1, 2, 3])  # duplicate
        assert not cache.would_retain([1, 2, 3, 4, 5, 6, 7])  # alone over budget
        assert not cache.would_retain([])
        cache.insert([4, 5, 6], make_segment(3))
        # The duplicate pre-check above touched [1,2,3]... order check: insert
        # a third entry and confirm the LRU victim is [4,5,6] after touching
        # [1,2,3] again via would_retain.
        assert not cache.would_retain([1, 2, 3])
        cache.insert([7, 8, 9], make_segment(3))
        assert cache.lookup([4, 5, 6])[0] == 0  # evicted
        assert cache.lookup([1, 2, 3])[0] == 3  # survived the touch

    def test_bind_rejects_second_owner(self):
        cache = PrefixCache(max_tokens=10)
        owner_a, owner_b = object(), object()
        cache.bind(owner_a)
        cache.bind(owner_a)  # idempotent for the same model
        with pytest.raises(ValueError, match="different model"):
            cache.bind(owner_b)

    def test_contains(self):
        cache = PrefixCache(max_tokens=10)
        cache.insert([1, 2], make_segment(2))
        assert [1, 2] in cache
        assert [1, 2, 3] not in cache

    def test_stats_to_dict(self):
        cache = PrefixCache(max_tokens=10)
        cache.insert([1, 2], make_segment(2))
        cache.lookup([1, 2, 3])
        data = cache.stats.to_dict()
        assert data["hits"] == 1 and data["misses"] == 0
        assert data["hit_rate"] == 1.0
        assert data["tokens_reused"] == 2
        assert data["insertions"] == 1


def make_paged_pool(num_blocks: int = 32) -> KVBlockPool:
    return KVBlockPool(LAYERS, HEADS, HEAD_DIM, block_size=BLOCK, num_blocks=num_blocks)


def paged_row(pool: KVBlockPool, length: int, seed: int = 0) -> PagedKVCache:
    """A batch-1 paged cache holding ``length`` random cached positions."""
    cache = PagedKVCache(pool, batch=1)
    rng = np.random.default_rng(seed)
    shape = (1, HEADS, length, HEAD_DIM)
    for layer in cache.layers:
        layer.append(
            rng.normal(size=shape).astype(np.float32),
            rng.normal(size=shape).astype(np.float32),
        )
    return cache


class TestPagedSharedBlockAccounting:
    """Regression: the byte budget counts each shared physical block once.

    Paged retention pins pool blocks by reference instead of copying; two
    entries sharing a prompt preamble pin the *same* blocks.  Charging each
    entry its full ``nbytes`` would double-count the shared blocks, shrink
    the effective byte budget, and evict entries the pool actually has room
    for — so the cache keeps per-block retention refcounts and charges a
    block only on its first pin."""

    def test_shared_blocks_charged_once(self):
        pool = make_paged_pool()
        row = paged_row(pool, 8)  # blocks [b0, b1] at block_size 4
        cache = PrefixCache(max_tokens=1000)
        assert cache.insert([1, 2, 3, 4, 5, 6, 7, 8], row.snapshot_prefix(0, 8))
        assert cache.num_bytes == 2 * BLOCK_NBYTES
        # The shorter entry pins only b0, which the first entry already pinned.
        assert cache.insert([1, 2, 3, 4], row.snapshot_prefix(0, 4))
        assert cache.num_bytes == 2 * BLOCK_NBYTES  # not 3: b0 counted once
        row.release()
        assert pool.blocks_in_use == 2  # retention alone keeps b0 and b1 alive
        cache.clear()
        assert cache.num_bytes == 0
        assert pool.blocks_in_use == 0
        assert np.all(pool.refcounts == 0)

    def test_eviction_credits_only_the_last_pin(self):
        pool = make_paged_pool()
        row = paged_row(pool, 8)
        cache = PrefixCache(max_tokens=1000)
        cache.insert([1, 2, 3, 4, 5, 6, 7, 8], row.snapshot_prefix(0, 8))
        cache.insert([1, 2, 3, 4], row.snapshot_prefix(0, 4))
        row.release()
        # LRU is the 8-token entry: evicting it frees b1 (sole pin) but b0
        # stays charged and alive through the surviving 4-token entry.
        assert cache.evict_lru()
        assert cache.num_bytes == 1 * BLOCK_NBYTES
        assert pool.blocks_in_use == 1
        assert cache.lookup([1, 2, 3, 4], limit=3)[0] == 3  # survivor still serves
        assert cache.evict_lru()
        assert cache.num_bytes == 0
        assert pool.blocks_in_use == 0
        assert not cache.evict_lru()  # empty cache: nothing to reclaim

    def test_byte_budget_sized_by_physical_blocks(self):
        """A budget of exactly two blocks admits a sharing entry for free and
        only evicts when genuinely new blocks are pinned."""
        pool = make_paged_pool()
        row = paged_row(pool, 8)
        other = paged_row(pool, 4, seed=1)
        cache = PrefixCache(max_tokens=1000, max_bytes=2 * BLOCK_NBYTES)
        assert cache.insert([1, 2, 3, 4, 5, 6, 7, 8], row.snapshot_prefix(0, 8))
        # Shares both pinned blocks: charges nothing, evicts nothing.
        assert cache.insert([1, 2, 3, 4], row.snapshot_prefix(0, 4))
        assert len(cache) == 2 and cache.stats.evictions == 0
        # A disjoint entry pins a genuinely new block: now over budget, the
        # LRU 8-token entry goes; its shared b0 stays charged via the
        # 4-token survivor, so exactly one block's bytes are credited back.
        assert cache.insert([9, 9, 9, 9], other.snapshot_prefix(0, 4))
        assert cache.stats.evictions == 1
        assert cache.num_bytes == 2 * BLOCK_NBYTES
        assert cache.lookup([1, 2, 3, 4], limit=3)[0] == 3
        row.release()
        other.release()
        cache.clear()
        assert pool.blocks_in_use == 0

    def test_rejected_insert_releases_block_pins(self):
        """insert takes segment ownership: a rejected paged segment must not
        leave its blocks pinned forever."""
        pool = make_paged_pool()
        row = paged_row(pool, 8)
        cache = PrefixCache(max_tokens=4)  # an 8-token prompt can never fit
        prefix = row.snapshot_prefix(0, 8)
        assert np.all(pool.refcounts[list(prefix.block_ids)] == 2)
        assert not cache.insert([1, 2, 3, 4, 5, 6, 7, 8], prefix)
        assert np.all(pool.refcounts[list(prefix.block_ids)] == 1)  # unpinned
        assert cache.num_bytes == 0
        row.release()
        assert pool.blocks_in_use == 0
