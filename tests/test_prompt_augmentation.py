"""Tests for the speed-prompt augmentation (GPT-4 prompt-set substitute)."""


from repro.data.prompt_augmentation import augmented_prompts, build_speed_prompt_set
from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.vgen import vgen_suite


class TestAugmentedPrompts:
    def test_exact_count(self):
        assert len(augmented_prompts(25)) == 25

    def test_prompts_have_instruction_prefix(self):
        for prompt in augmented_prompts(10):
            assert prompt.startswith("Please act as a professional Verilog designer.")

    def test_deterministic_for_seed(self):
        assert augmented_prompts(12, seed=3) == augmented_prompts(12, seed=3)

    def test_seeds_produce_different_sets(self):
        assert augmented_prompts(12, seed=3) != augmented_prompts(12, seed=4)

    def test_prompts_are_diverse(self):
        prompts = augmented_prompts(40)
        assert len(set(prompts)) > 30

    def test_zero_count(self):
        assert augmented_prompts(0) == []


class TestSpeedPromptSet:
    def test_paper_size_set(self):
        prompts = build_speed_prompt_set(total=575, suites=(rtllm_suite(), vgen_suite()))
        assert len(prompts) == 575

    def test_benchmark_prompts_come_first(self):
        suite = rtllm_suite()
        prompts = build_speed_prompt_set(total=40, suites=(suite,))
        assert prompts[: len(suite)] == suite.prompts()

    def test_truncates_when_suites_exceed_total(self):
        suite = rtllm_suite()
        prompts = build_speed_prompt_set(total=5, suites=(suite,))
        assert len(prompts) == 5

    def test_without_suites(self):
        prompts = build_speed_prompt_set(total=12)
        assert len(prompts) == 12
