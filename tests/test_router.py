"""Tests for the multi-process sharded serving stack.

Three layers under test (``docs/sharding.md``):

* the plain-data message vocabulary and its codecs
  (:mod:`repro.serving.messages`) — round-trips must be lossless, and the
  preamble hash must be stable across processes;
* :class:`~repro.serving.control.EngineControl` — the transport-agnostic
  command surface whose symmetry underwrites the identity guarantee;
* :class:`~repro.serving.router.Router` + worker processes — the headline
  contracts: a **single-worker router is token-identical to the in-process
  engine** across decoding strategies, sampling modes, tree verification,
  chunked prefill and prefix reuse; a **worker killed mid-run loses and
  duplicates nothing** (deterministic per-request rngs make the requeued
  replay byte-identical); and randomized submit/cancel/kill traces under
  tiny KV pools always settle every request and drain the pools to zero.

Workers fork by default here (fast, callable factories); one test runs the
full ``spawn`` path with the importable ``engine_from_pipeline`` factory to
prove spawn safety.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from proptest import Cases, for_all, num_cases

from repro.core.decoding import DecodingStrategy
from repro.models.generation import GenerationConfig
from repro.serving import (
    EngineControl,
    PrefixCache,
    Router,
    RouterConfig,
    SchedulerConfig,
    ServingEngine,
    derive_request_rng,
    save_pipeline,
)
from repro.serving.messages import (
    CancelCommand,
    CancelReply,
    DrainCommand,
    DrainReply,
    QueryCommand,
    StepCommand,
    StepReply,
    SubmitCommand,
    decode_config,
    decode_result,
    encode_config,
    encode_result,
    preamble_key,
    reply_type_for,
)
from repro.serving.request import GenerationRequest

METHODS = [
    ("ntp", DecodingStrategy.NTP),
    ("medusa", DecodingStrategy.MEDUSA),
    ("ours", DecodingStrategy.OURS),
]


@pytest.fixture(scope="session")
def pipeline_file(tiny_pipeline, tmp_path_factory):
    """The trained tiny pipeline pickled for spawn-safe worker factories."""
    path = tmp_path_factory.mktemp("sharding") / "pipeline.pkl"
    return str(save_pipeline(tiny_pipeline, path))


def _engine(pipeline, method, strategy, **kwargs):
    return ServingEngine(pipeline.models[method], pipeline.tokenizer, strategy=strategy, **kwargs)


def _engine_factory(pipeline, method, strategy, prefix_cache_tokens=None, **kwargs):
    """A fork-safe factory closure building a fresh engine inside the worker."""

    def factory():
        prefix_cache = (
            None if prefix_cache_tokens is None else PrefixCache(max_tokens=prefix_cache_tokens)
        )
        return _engine(pipeline, method, strategy, prefix_cache=prefix_cache, **kwargs)

    return factory


def _router(pipeline, method, strategy, num_workers=1, config=None, **factory_kwargs):
    config = config or RouterConfig(num_workers=num_workers, start_method="fork")
    return Router(_engine_factory(pipeline, method, strategy, **factory_kwargs), config=config)


def _prompt_ids(pipeline, count):
    prompts = [example.prompt_text() for example in pipeline.examples]
    prompts = (prompts * (count // max(len(prompts), 1) + 1))[:count]
    return [pipeline.tokenizer.encode(p, add_bos=True) for p in prompts]


class TestMessages:
    def test_config_roundtrip(self):
        config = GenerationConfig.sampling_config(0.7, 33, seed=5, tree_verify=True)
        assert decode_config(encode_config(config)) == config
        config = replace(GenerationConfig.greedy_config(12), seed=None)
        assert decode_config(encode_config(config)) == config

    def test_config_decode_rejects_unknown_keys(self):
        payload = encode_config(GenerationConfig())
        payload["future_knob"] = 1
        with pytest.raises(TypeError):
            decode_config(payload)

    def test_result_roundtrip(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        request_id = engine.submit_text(
            tiny_pipeline.examples[0].prompt_text(), GenerationConfig.greedy_config(12)
        )
        result = engine.run()[request_id]
        decoded = decode_result(encode_result(result))
        assert decoded == result
        assert decoded.step_records == result.step_records

    def test_preamble_key_is_stable_and_prefix_scoped(self):
        key = preamble_key([1, 2, 3, 4, 5, 6], 4)
        assert key == preamble_key([1, 2, 3, 4, 99, 98], 4)  # only the window counts
        assert key != preamble_key([1, 2, 3, 5, 5, 6], 4)
        # Stable constant: the same preamble must hash identically in every
        # process and interpreter session (built-in hash is salted; this
        # value is pinned so a regression is loud).
        assert preamble_key([1, 2, 3], 3) == 9974032063344415273

    def test_reply_type_pairing(self):
        assert reply_type_for(SubmitCommand(prompt_ids=[1])) is not None
        assert reply_type_for(StepCommand()) is StepReply
        assert reply_type_for(DrainCommand()) is DrainReply
        with pytest.raises(TypeError):
            reply_type_for(object())


class TestEngineControl:
    def test_drain_reports_all_tokens_and_finish(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        control = EngineControl(engine)
        prompt = _prompt_ids(tiny_pipeline, 1)[0]
        submit = control.handle(
            SubmitCommand(prompt_ids=prompt, config=encode_config(GenerationConfig.greedy_config(16)))
        )
        assert submit.error is None
        reply = control.handle(DrainCommand())
        committed = [t for event in reply.commits for t in event.tokens]
        assert len(reply.finished) == 1
        finished = reply.finished[0]
        assert finished.request_id == submit.request_id
        result = decode_result(finished.result)
        assert committed == list(result.token_ids)
        assert not reply.stats.has_work

    def test_queries(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        control = EngineControl(engine)
        stats = control.handle(QueryCommand(kind="stats")).payload
        assert stats["queue_depth"] == 0 and not stats["has_work"]
        assert control.handle(QueryCommand(kind="kv_pool_stats")).payload["kv_memory"] == "paged"
        assert "hit_rate" in control.handle(QueryCommand(kind="prefix_cache_stats")).payload
        with pytest.raises(ValueError):
            control.handle(QueryCommand(kind="nonsense"))

    def test_cancel_unknown_id_is_false_not_error(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        control = EngineControl(engine)
        assert control.handle(CancelCommand(request_id="ghost")).cancelled is False

    def test_forget_on_done_releases_engine_state(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        control = EngineControl(engine, forget_on_done=True)
        prompt = _prompt_ids(tiny_pipeline, 1)[0]
        submit = control.handle(SubmitCommand(prompt_ids=prompt))
        reply = control.handle(DrainCommand())
        assert reply.finished[0].stream_metrics["ttft_seconds"] is not None
        with pytest.raises(KeyError):
            engine.result(submit.request_id)  # worker retains nothing


class TestDeterministicRequestRng:
    """Satellite: per-request rngs derive from (seed, request_id)."""

    def _request(self, request_id, seed):
        config = replace(GenerationConfig.sampling_config(0.8, 8), seed=seed)
        return GenerationRequest(request_id=request_id, prompt_ids=[1, 2], config=config)

    def test_explicit_seed_ignores_request_id(self):
        a = derive_request_rng(self._request("a", seed=7)).integers(0, 1 << 30, 8)
        b = derive_request_rng(self._request("b", seed=7)).integers(0, 1 << 30, 8)
        assert list(a) == list(b)

    def test_seed_none_derives_from_request_id(self):
        a1 = derive_request_rng(self._request("a", seed=None)).integers(0, 1 << 30, 8)
        a2 = derive_request_rng(self._request("a", seed=None)).integers(0, 1 << 30, 8)
        b = derive_request_rng(self._request("b", seed=None)).integers(0, 1 << 30, 8)
        assert list(a1) == list(a2)  # resubmission replays the same stream
        assert list(a1) != list(b)  # distinct requests draw independently

    def test_resubmission_on_fresh_engine_reproduces_tokens(self, tiny_pipeline):
        """The crash-requeue guarantee, without processes: the same request id
        resubmitted to a *different* engine samples identical tokens."""
        prompt = _prompt_ids(tiny_pipeline, 1)[0]
        config = replace(GenerationConfig.sampling_config(0.9, 20), seed=None)
        runs = []
        for _ in range(2):
            engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
            engine.submit(prompt, config=config, request_id="replayed")
            runs.append(engine.run()["replayed"].token_ids)
        assert runs[0] == runs[1]


class TestSingleWorkerIdentity:
    """One-worker router output must equal the in-process engine, per config."""

    def _compare(self, pipeline, method, strategy, configs, engine_kwargs=None, router_kwargs=None):
        prompts = _prompt_ids(pipeline, len(configs))
        engine = _engine(pipeline, method, strategy, **(engine_kwargs or {}))
        for index, (prompt, config) in enumerate(zip(prompts, configs)):
            engine.submit(prompt, config=config, request_id=f"r{index}")
        expected = engine.run()

        router = _router(pipeline, method, strategy, **(router_kwargs or {}))
        with router:
            for index, (prompt, config) in enumerate(zip(prompts, configs)):
                router.submit(prompt, config=config, request_id=f"r{index}")
            results = router.drain(timeout=300)
        assert sorted(results) == sorted(expected)
        for request_id, result in results.items():
            assert result.token_ids == expected[request_id].token_ids
            assert result.text == expected[request_id].text
            assert result.steps == expected[request_id].steps
            # The streamed view agrees with the final result: exactly-once.
            assert router.request_record(request_id).tokens == list(result.token_ids)

    @pytest.mark.parametrize("method,strategy", METHODS)
    def test_greedy(self, tiny_pipeline, method, strategy):
        self._compare(tiny_pipeline, method, strategy, [GenerationConfig.greedy_config(20)] * 4)

    @pytest.mark.parametrize("method,strategy", METHODS)
    def test_sampling(self, tiny_pipeline, method, strategy):
        configs = [GenerationConfig.sampling_config(0.8, 16, seed=i) for i in range(4)]
        self._compare(tiny_pipeline, method, strategy, configs)

    @pytest.mark.parametrize("method,strategy", [("medusa", DecodingStrategy.MEDUSA), ("ours", DecodingStrategy.OURS)])
    def test_tree_verification(self, tiny_pipeline, method, strategy):
        configs = [GenerationConfig.greedy_config(16, tree_verify=True)] * 2 + [
            GenerationConfig.sampling_config(0.8, 16, seed=3, tree_verify=True)
        ]
        self._compare(tiny_pipeline, method, strategy, configs)

    def test_chunked_prefill(self, tiny_pipeline):
        scheduler = SchedulerConfig(max_active_requests=4, max_prefill_tokens_per_step=16)
        self._compare(
            tiny_pipeline,
            "ours",
            DecodingStrategy.OURS,
            [GenerationConfig.greedy_config(16)] * 4,
            engine_kwargs={"scheduler_config": scheduler},
            router_kwargs={"scheduler_config": scheduler},
        )

    def test_prefix_reuse(self, tiny_pipeline):
        preamble = "// Task: implement the following Verilog module exactly.\n"
        prompts = [
            tiny_pipeline.tokenizer.encode(preamble + ex.prompt_text(), add_bos=True)
            for ex in tiny_pipeline.examples[:4]
        ]
        config = GenerationConfig.greedy_config(14)
        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS, prefix_cache=PrefixCache(max_tokens=2048)
        )
        for index, prompt in enumerate(prompts):
            engine.submit(prompt, config=config, request_id=f"r{index}")
        expected = engine.run()

        router = _router(tiny_pipeline, "ours", DecodingStrategy.OURS, prefix_cache_tokens=2048)
        with router:
            # Complete the first request before submitting the rest: retention
            # happens when a prefill finishes, so if all four submits landed in
            # one admission step every lookup would miss and reuse would be 0.
            router.submit(prompts[0], config=config, request_id="r0")
            router.result("r0", timeout=300)
            for index, prompt in enumerate(prompts[1:], start=1):
                router.submit(prompt, config=config, request_id=f"r{index}")
            results = router.drain(timeout=300)
            for request_id in results:
                assert results[request_id].token_ids == expected[request_id].token_ids
            # Reuse actually happened on the worker: later prompts hit the
            # preamble entry the first one retained.
            stats = router.prefix_cache_stats()
            assert stats["aggregate"]["prompt_tokens_reused"] > 0


class TestCrashRecovery:
    def test_worker_kill_mid_run_completes_everything(self, tiny_pipeline):
        prompts = _prompt_ids(tiny_pipeline, 6)
        config = replace(GenerationConfig.sampling_config(0.8, 64), seed=None)
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        for index, prompt in enumerate(prompts):
            engine.submit(prompt, config=config, request_id=f"r{index}")
        expected = engine.run()

        router = _router(
            tiny_pipeline,
            "ours",
            DecodingStrategy.OURS,
            config=RouterConfig(num_workers=2, start_method="fork", max_restarts=3),
        )
        with router:
            for index, prompt in enumerate(prompts):
                router.submit(prompt, config=config, request_id=f"r{index}")
            time.sleep(0.05)
            router.poll()
            router.workers[0].kill()
            results = router.drain(timeout=300)
            # No request lost...
            assert sorted(results) == sorted(expected)
            for request_id, result in results.items():
                # ...every replay token-identical to the uninterrupted run...
                assert result.token_ids == expected[request_id].token_ids
                record = router.request_record(request_id)
                # ...and none duplicated: the delivered stream equals the
                # final result exactly, with no replayed residue pending.
                assert record.tokens == list(result.token_ids)
                assert record.replay_skip == 0
            assert sum(router._restarts) >= 1

    def test_streaming_callback_sees_each_token_once(self, tiny_pipeline):
        prompts = _prompt_ids(tiny_pipeline, 4)
        config = replace(GenerationConfig.sampling_config(0.8, 48), seed=None)
        router = _router(
            tiny_pipeline,
            "ours",
            DecodingStrategy.OURS,
            config=RouterConfig(num_workers=2, start_method="fork", max_restarts=3),
        )
        streamed = {}
        with router:
            for index, prompt in enumerate(prompts):
                request_id = router.submit(prompt, config=config, request_id=f"r{index}")
                streamed[request_id] = []
                router.request_record(request_id).on_tokens = (
                    lambda rid, tokens: streamed[rid].extend(tokens)
                )
            time.sleep(0.05)
            router.poll()
            router.workers[1].kill()
            results = router.drain(timeout=300)
        for request_id, result in results.items():
            assert streamed[request_id] == list(result.token_ids)


class TestRouterFuzz:
    """Randomized submit/cancel/kill traces under tiny KV pools (satellite)."""

    def _trace(self, pipeline, case: Cases) -> None:
        config = RouterConfig(
            num_workers=case.choice([1, 2]),
            start_method="fork",
            max_restarts=4,
            imbalance_threshold=case.choice([0, 2]),
        )
        router = _router(
            pipeline,
            "ours",
            DecodingStrategy.OURS,
            config=config,
            kv_block_size=16,
            kv_pool_blocks=24,  # tiny pool: a few requests' worth of pages
            scheduler_config=SchedulerConfig(max_active_requests=3),
        )
        prompts = _prompt_ids(pipeline, 8)
        submitted, cancelled = [], set()
        with router:
            kills = case.integer(0, 1)
            for op in range(case.integer(6, 10)):
                kind = case.choice(["submit", "submit", "submit", "cancel", "kill", "poll"])
                if kind == "submit":
                    request_id = f"c{case.case_index}-{op}"
                    router.submit(
                        case.choice(prompts),
                        config=GenerationConfig.sampling_config(
                            0.8, case.integer(4, 16), seed=case.integer(0, 3)
                        ),
                        request_id=request_id,
                    )
                    submitted.append(request_id)
                elif kind == "cancel" and submitted:
                    target = case.choice(submitted)
                    if router.cancel(target):
                        cancelled.add(target)
                elif kind == "kill" and kills > 0:
                    kills -= 1
                    router.workers[case.integer(0, len(router.workers) - 1)].kill()
                else:
                    router.poll()
            router.drain(timeout=300)
            # Exactly-once settlement: every submitted id is done, none lost.
            for request_id in submitted:
                record = router.request_record(request_id)
                assert record.done, request_id
                assert record.error is None
                assert record.replay_skip == 0
                if request_id not in cancelled and not record.cancelled:
                    result = decode_result(record.result_payload)
                    assert record.tokens == list(result.token_ids)
            # Pools drain to zero once the fleet is idle.
            pool = router.kv_pool_stats()
            assert pool["aggregate"]["blocks_in_use"] == 0
            fleet = router.fleet_stats()["aggregate"]
            assert fleet["queue_depth"] == 0 and fleet["num_active"] == 0

    def test_random_router_traces_quick(self, tiny_pipeline):
        for_all(num_cases(3, 10), lambda case: self._trace(tiny_pipeline, case), seed=11)

    @pytest.mark.slow
    def test_random_router_traces_full(self, tiny_pipeline):
        for_all(10, lambda case: self._trace(tiny_pipeline, case), seed=12)


class TestAffinityRouting:
    def _stub_router(self, num_workers, threshold=4):
        router = Router(factory=None, config=RouterConfig(num_workers=num_workers, imbalance_threshold=threshold))
        router.workers = [object() for _ in range(num_workers)]  # routing only
        router._started = True
        return router

    def test_same_preamble_sticks_to_one_worker(self):
        router = self._stub_router(4)
        preamble = list(range(16))
        picks = {router._route(preamble + [extra]) for extra in range(20)}
        assert len(picks) == 1

    def test_imbalance_falls_back_to_least_loaded(self):
        from repro.serving.router import RouterRequest

        router = self._stub_router(2, threshold=0)
        preamble = list(range(16))
        first = router._route(preamble + [0])
        # Pin outstanding load on the affinity choice; threshold 0 must move
        # the next same-preamble request to the empty worker.
        router._requests["x"] = RouterRequest(
            request_id="x", prompt_ids=[], config=None, priority=0,
            deadline=None, worker_index=first,
        )
        second = router._route(preamble + [1])
        assert second != first
        # ...and stickiness remembers the rebalanced placement.
        assert router._affinity[preamble_key(preamble + [2], 16)] == second

    def test_end_to_end_shared_preambles_colocate(self, tiny_pipeline):
        preamble = "// Task: implement the following Verilog module exactly.\n"
        prompts = [
            tiny_pipeline.tokenizer.encode(preamble + ex.prompt_text(), add_bos=True)
            for ex in tiny_pipeline.examples[:4]
        ]
        router = _router(
            tiny_pipeline,
            "ours",
            DecodingStrategy.OURS,
            config=RouterConfig(num_workers=2, start_method="fork", imbalance_threshold=16),
        )
        with router:
            ids = [router.submit(p, config=GenerationConfig.greedy_config(6)) for p in prompts]
            router.drain(timeout=300)
            workers = {router.request_record(request_id).worker_index for request_id in ids}
        assert len(workers) == 1


class TestSpawnSafety:
    def test_spawn_worker_with_importable_factory(self, tiny_pipeline, pipeline_file):
        prompt = _prompt_ids(tiny_pipeline, 1)[0]
        config = GenerationConfig.greedy_config(16)
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        engine.submit(prompt, config=config, request_id="r0")
        expected = engine.run()["r0"]

        router = Router(
            "repro.serving.worker:engine_from_pipeline",
            factory_kwargs={"pipeline_path": pipeline_file, "method": "ours"},
            config=RouterConfig(num_workers=1, start_method="spawn", hello_timeout=300.0),
        )
        with router:
            router.submit(prompt, config=config, request_id="r0")
            result = router.result("r0", timeout=300)
        assert result.token_ids == expected.token_ids


class TestRouterBehaviour:
    def test_submit_error_surfaces_and_leaves_router_usable(self, tiny_pipeline):
        router = _router(tiny_pipeline, "ours", DecodingStrategy.OURS)
        with router:
            with pytest.raises(ValueError):
                router.submit([], config=GenerationConfig.greedy_config(4))
            prompt = _prompt_ids(tiny_pipeline, 1)[0]
            request_id = router.submit(prompt, config=GenerationConfig.greedy_config(6))
            assert router.result(request_id, timeout=300).token_ids

    def test_duplicate_request_id_rejected(self, tiny_pipeline):
        router = _router(tiny_pipeline, "ours", DecodingStrategy.OURS)
        with router:
            prompt = _prompt_ids(tiny_pipeline, 1)[0]
            router.submit(prompt, config=GenerationConfig.greedy_config(4), request_id="dup")
            with pytest.raises(ValueError):
                router.submit(prompt, config=GenerationConfig.greedy_config(4), request_id="dup")
            router.drain(timeout=300)

    def test_cancel_and_forget(self, tiny_pipeline):
        router = _router(tiny_pipeline, "ours", DecodingStrategy.OURS)
        with router:
            prompt = _prompt_ids(tiny_pipeline, 1)[0]
            request_id = router.submit(prompt, config=GenerationConfig.greedy_config(64))
            router.cancel(request_id)
            record = router._wait(request_id, timeout=300)
            assert record.done
            assert record.cancelled
            assert router.cancel(request_id) is False  # settled: no-op
            router.forget(request_id)
            with pytest.raises(KeyError):
                router.tokens(request_id)

    def test_stream_metrics_survive_worker_forgetting(self, tiny_pipeline):
        router = _router(tiny_pipeline, "ours", DecodingStrategy.OURS)
        with router:
            prompt = _prompt_ids(tiny_pipeline, 1)[0]
            request_id = router.submit(prompt, config=GenerationConfig.greedy_config(12))
            router.result(request_id, timeout=300)
            metrics = router.stream_metrics(request_id)
        assert metrics["ttft_seconds"] is not None
        assert len(metrics["inter_token_seconds"]) >= 0

    def test_fleet_stats_shape(self, tiny_pipeline):
        router = _router(
            tiny_pipeline,
            "ours",
            DecodingStrategy.OURS,
            config=RouterConfig(num_workers=2, start_method="fork"),
        )
        with router:
            stats = router.fleet_stats()
            assert set(stats["workers"]) == {"w0", "w1"}
            assert stats["aggregate"]["num_workers"] == 2
            assert stats["aggregate"]["workers_alive"] == 2

    def test_closed_router_refuses_traffic(self, tiny_pipeline):
        router = _router(tiny_pipeline, "ours", DecodingStrategy.OURS)
        with router:
            pass
        with pytest.raises(RuntimeError):
            router.submit([1, 2], config=GenerationConfig.greedy_config(4))
