"""Tests for the continuous-batching serving subsystem.

The engine's core guarantee — batched serving commits exactly the token
sequences sequential ``generate`` commits — is asserted for all three
decoding strategies at 8 concurrent requests, under greedy decoding and
temperature sampling, and with constrained concurrency (so admission happens
mid-flight).  Scheduler admission/eviction ordering is tested in isolation.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from proptest import Cases, for_all, num_cases

from repro.core.decoding import DecodingStrategy
from repro.models.generation import GenerationConfig
from repro.serving import (
    GenerationRequest,
    PrefixCache,
    RequestState,
    RequestStatus,
    Scheduler,
    SchedulerConfig,
    ServingEngine,
)

METHODS = [
    ("ntp", DecodingStrategy.NTP),
    ("medusa", DecodingStrategy.MEDUSA),
    ("ours", DecodingStrategy.OURS),
]


def _prompts(pipeline, count):
    prompts = [example.prompt_text() for example in pipeline.examples]
    return (prompts * (count // max(len(prompts), 1) + 1))[:count]


def _engine(
    pipeline,
    method,
    strategy,
    prefix_cache=None,
    kv_memory="paged",
    kv_block_size=16,
    kv_pool_blocks=None,
    **scheduler_kwargs,
):
    return ServingEngine(
        pipeline.models[method],
        pipeline.tokenizer,
        strategy=strategy,
        scheduler_config=SchedulerConfig(**scheduler_kwargs) if scheduler_kwargs else None,
        prefix_cache=prefix_cache,
        kv_memory=kv_memory,
        kv_block_size=kv_block_size,
        kv_pool_blocks=kv_pool_blocks,
    )


def _shared_prefix_prompts(pipeline, count):
    """N prompts over 2 distinct task preambles — the reuse-friendly workload."""
    preambles = [
        "// Task: implement the following Verilog module exactly as specified.\n",
        "// You are a careful hardware engineer; write synthesizable Verilog.\n",
    ]
    bodies = _prompts(pipeline, count)
    return [preambles[index % 2] + body for index, body in enumerate(bodies)]


class TestServingEquivalence:
    """Batched outputs must be token-identical to sequential generate."""

    @pytest.mark.parametrize("method,strategy", METHODS)
    def test_eight_concurrent_greedy(self, tiny_pipeline, method, strategy):
        prompts = _prompts(tiny_pipeline, 8)
        config = GenerationConfig.greedy_config(24)
        decoder = tiny_pipeline.decoder_for(method)
        sequential = [decoder.generate_from_text(prompt, config) for prompt in prompts]

        engine = _engine(tiny_pipeline, method, strategy, max_active_requests=8)
        request_ids = [engine.submit_text(prompt, config) for prompt in prompts]
        results = engine.run()

        for request_id, expected in zip(request_ids, sequential):
            assert results[request_id].token_ids == expected.token_ids
            assert results[request_id].text == expected.text
            assert results[request_id].stopped_by_eos == expected.stopped_by_eos
            assert results[request_id].steps == expected.steps

    @pytest.mark.parametrize("method,strategy", METHODS)
    def test_eight_concurrent_sampling(self, tiny_pipeline, method, strategy):
        prompts = _prompts(tiny_pipeline, 8)
        decoder = tiny_pipeline.decoder_for(method)
        configs = [GenerationConfig.sampling_config(0.8, 20, seed=i) for i in range(len(prompts))]
        sequential = [decoder.generate_from_text(p, c) for p, c in zip(prompts, configs)]

        engine = _engine(tiny_pipeline, method, strategy, max_active_requests=8)
        request_ids = [engine.submit_text(p, c) for p, c in zip(prompts, configs)]
        results = engine.run()

        for request_id, expected in zip(request_ids, sequential):
            assert results[request_id].token_ids == expected.token_ids

    @pytest.mark.parametrize("method,strategy", METHODS)
    def test_constrained_concurrency_continuous_admission(self, tiny_pipeline, method, strategy):
        """With max_active=2 the engine admits mid-flight; outputs are unchanged."""
        prompts = _prompts(tiny_pipeline, 5)
        config = GenerationConfig.greedy_config(16)
        decoder = tiny_pipeline.decoder_for(method)
        sequential = [decoder.generate_from_text(prompt, config) for prompt in prompts]

        engine = _engine(tiny_pipeline, method, strategy, max_active_requests=2)
        request_ids = [engine.submit_text(prompt, config) for prompt in prompts]
        results = engine.run()

        for request_id, expected in zip(request_ids, sequential):
            assert results[request_id].token_ids == expected.token_ids

    @pytest.mark.parametrize("method,strategy", METHODS)
    def test_tree_verification_matches_sequential(self, tiny_pipeline, method, strategy):
        """Tree-mode serving (``GenerationConfig.tree_verify``) commits the
        same tokens as sequential generate, greedy and sampling mixed."""
        prompts = _prompts(tiny_pipeline, 6)
        configs = [
            GenerationConfig.greedy_config(20, tree_verify=True)
            if index % 2 == 0
            else GenerationConfig.sampling_config(0.8, 18, seed=index, tree_verify=True)
            for index in range(len(prompts))
        ]
        decoder = tiny_pipeline.decoder_for(method)
        sequential = [decoder.generate_from_text(p, c) for p, c in zip(prompts, configs)]

        engine = _engine(tiny_pipeline, method, strategy, max_active_requests=6)
        request_ids = [engine.submit_text(p, c) for p, c in zip(prompts, configs)]
        results = engine.run()
        for request_id, expected in zip(request_ids, sequential):
            assert results[request_id].token_ids == expected.token_ids
            assert results[request_id].steps == expected.steps

    def test_mixed_tree_and_row_requests_in_one_batch(self, tiny_pipeline):
        """Requests that opted into trees and requests that did not share the
        batched forward; both match their sequential references."""
        prompts = _prompts(tiny_pipeline, 6)
        configs = [GenerationConfig.greedy_config(18, tree_verify=(index % 2 == 0)) for index in range(len(prompts))]
        decoder = tiny_pipeline.decoder_for("ours")
        sequential = [decoder.generate_from_text(p, c) for p, c in zip(prompts, configs)]

        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=3)
        request_ids = [engine.submit_text(p, c) for p, c in zip(prompts, configs)]
        results = engine.run()
        for request_id, expected, config in zip(request_ids, sequential, configs):
            assert results[request_id].token_ids == expected.token_ids, config
        # Tree requests verified strictly fewer positions than their
        # row-batched sequential twin (shared-prefix dedup at work).
        row_reference = [
            decoder.generate_from_text(p, replace(c, tree_verify=False)) for p, c in zip(prompts, configs)
        ]
        for request_id, reference, config in zip(request_ids, row_reference, configs):
            if config.tree_verify:
                assert results[request_id].tokens_verified < reference.tokens_verified

    def test_mixed_budgets_per_request(self, tiny_pipeline):
        """Requests with different max_new_tokens finish independently."""
        prompts = _prompts(tiny_pipeline, 4)
        budgets = [4, 9, 16, 25]
        decoder = tiny_pipeline.decoder_for("ours")
        sequential = [
            decoder.generate_from_text(p, GenerationConfig.greedy_config(b)) for p, b in zip(prompts, budgets)
        ]

        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=4)
        request_ids = [
            engine.submit_text(p, GenerationConfig.greedy_config(b)) for p, b in zip(prompts, budgets)
        ]
        results = engine.run()
        for request_id, expected, budget in zip(request_ids, sequential, budgets):
            assert results[request_id].token_ids == expected.token_ids
            assert results[request_id].tokens_generated <= budget


class TestServingEngineBehaviour:
    def test_rejects_encoder_decoder_models(self, tiny_pipeline):
        from repro.models.encdec_lm import EncDecConfig, TinyCodeT5p
        from repro.models.medusa import MedusaLM

        backbone = TinyCodeT5p(
            EncDecConfig(vocab_size=64, dim=32, num_encoder_layers=1, num_decoder_layers=1, num_heads=2, max_seq_len=64)
        )
        model = MedusaLM(backbone, vocab_size=64, num_medusa_heads=2)
        with pytest.raises(ValueError, match="decoder-only"):
            ServingEngine(model, tiny_pipeline.tokenizer)

    def test_rejects_empty_prompt_and_duplicate_ids(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        with pytest.raises(ValueError, match="empty"):
            engine.submit([])
        engine.submit([1, 2, 3], request_id="dup")
        with pytest.raises(ValueError, match="duplicate"):
            engine.submit([1, 2, 3], request_id="dup")

    def test_overlong_prompt_finishes_empty(self, tiny_pipeline):
        """A prompt that fills the context window returns an empty result,
        exactly like sequential generate."""
        max_seq_len = tiny_pipeline.models["ours"].backbone.max_seq_len
        prompt = [2] * max_seq_len
        decoder = tiny_pipeline.decoder_for("ours")
        expected = decoder.generate(prompt, GenerationConfig.greedy_config(8))
        assert expected.token_ids == []

        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        request_id = engine.submit(prompt, GenerationConfig.greedy_config(8))
        results = engine.run()
        assert results[request_id].token_ids == []
        assert not engine.has_work

    def test_results_and_latency_accessors(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)
        request_id = engine.submit_text("module m", GenerationConfig.greedy_config(4))
        with pytest.raises(KeyError):
            engine.result(request_id)
        engine.run()
        assert engine.result(request_id).tokens_generated <= 4
        assert engine.scheduler_latency(request_id) >= 0.0


def _state(request_id: str, prompt_len: int, max_new: int) -> RequestState:
    request = GenerationRequest(
        request_id=request_id,
        prompt_ids=list(range(prompt_len)),
        config=GenerationConfig.greedy_config(max_new),
    )
    return RequestState(request=request)


class TestScheduler:
    def test_fcfs_admission_order(self):
        scheduler = Scheduler(SchedulerConfig(max_active_requests=2, max_batch_tokens=1000))
        for name in ("a", "b", "c"):
            scheduler.submit(_state(name, prompt_len=10, max_new=10))
        admitted = scheduler.admit()
        assert [s.request.request_id for s in admitted] == ["a", "b"]
        assert scheduler.num_waiting == 1
        # Admission moves requests into PREFILLING; the engine flips them to
        # RUNNING once their prompt has fully entered the cache.
        assert all(s.status is RequestStatus.PREFILLING for s in admitted)

    def test_token_budget_blocks_admission(self):
        scheduler = Scheduler(SchedulerConfig(max_active_requests=8, max_batch_tokens=50))
        scheduler.submit(_state("big", prompt_len=20, max_new=20))   # footprint 40
        scheduler.submit(_state("small", prompt_len=5, max_new=10))  # footprint 15
        admitted = scheduler.admit()
        # "small" would fit the leftover budget but must NOT overtake FCFS order.
        assert [s.request.request_id for s in admitted] == ["big"]
        assert scheduler.tokens_in_flight == 40
        assert scheduler.num_waiting == 1

    def test_release_frees_budget_for_next_in_line(self):
        scheduler = Scheduler(SchedulerConfig(max_active_requests=8, max_batch_tokens=50))
        first = _state("first", prompt_len=20, max_new=20)
        scheduler.submit(first)
        scheduler.submit(_state("second", prompt_len=20, max_new=20))
        assert [s.request.request_id for s in scheduler.admit()] == ["first"]
        assert scheduler.admit() == []  # budget exhausted
        scheduler.release(first)
        assert first.status is RequestStatus.FINISHED
        assert [s.request.request_id for s in scheduler.admit()] == ["second"]

    def test_oversized_head_admitted_when_idle(self):
        """Progress guarantee: an over-budget request runs when nothing else does."""
        scheduler = Scheduler(SchedulerConfig(max_active_requests=4, max_batch_tokens=10))
        scheduler.submit(_state("huge", prompt_len=100, max_new=100))
        admitted = scheduler.admit()
        assert [s.request.request_id for s in admitted] == ["huge"]
        # ... but it blocks everything behind it until released.
        scheduler.submit(_state("next", prompt_len=1, max_new=1))
        assert scheduler.admit() == []

    def test_concurrency_cap(self):
        scheduler = Scheduler(SchedulerConfig(max_active_requests=3, max_batch_tokens=10_000))
        for index in range(5):
            scheduler.submit(_state(f"r{index}", prompt_len=1, max_new=1))
        assert len(scheduler.admit()) == 3
        assert scheduler.num_running == 3
        assert scheduler.num_waiting == 2

    def test_page_budget_defers_admission(self):
        """The free-page gate defers requests the token budget would admit."""
        scheduler = Scheduler(SchedulerConfig(max_active_requests=8, max_batch_tokens=10_000))
        scheduler.submit(_state("a", prompt_len=20, max_new=20))  # footprint 40
        scheduler.submit(_state("b", prompt_len=20, max_new=20))
        admitted = scheduler.admit(free_page_tokens=50)
        assert [s.request.request_id for s in admitted] == ["a"]
        assert scheduler.num_waiting == 1
        # The deferred head is admitted once pages free up (FCFS preserved).
        admitted = scheduler.admit(free_page_tokens=64)
        assert [s.request.request_id for s in admitted] == ["b"]

    def test_page_overhead_charged_per_request(self):
        """Each admission charges footprint + per-request page overhead."""
        scheduler = Scheduler(SchedulerConfig(max_active_requests=8, max_batch_tokens=10_000))
        for name in ("a", "b"):
            scheduler.submit(_state(name, prompt_len=10, max_new=10))  # footprint 20
        # Two footprints fit 40 free page tokens, but overhead 15 means the
        # second request's 20 + 15 no longer fits the 40 - 35 = 5 left.
        admitted = scheduler.admit(free_page_tokens=40, page_overhead_tokens=15)
        assert [s.request.request_id for s in admitted] == ["a"]

    def test_page_budget_progress_guarantee(self):
        """An idle scheduler admits the head even over the page budget, so a
        pool smaller than one request cannot deadlock admission."""
        scheduler = Scheduler(SchedulerConfig(max_active_requests=4, max_batch_tokens=10_000))
        scheduler.submit(_state("huge", prompt_len=100, max_new=100))
        scheduler.submit(_state("next", prompt_len=1, max_new=1))
        admitted = scheduler.admit(free_page_tokens=10)
        assert [s.request.request_id for s in admitted] == ["huge"]
        # ... but with the pool drained nothing squeezes in behind it.
        assert scheduler.admit(free_page_tokens=0) == []
        # Once pages free up again, small requests resume flowing.
        assert [s.request.request_id for s in scheduler.admit(free_page_tokens=16)] == ["next"]


class TestSchedulerFuzz:
    """Random admission/eviction traces must uphold the scheduler invariants.

    * the concatenated admission order is exactly the submission order (FCFS,
      no overtaking — a small request never starves a big one, and vice
      versa);
    * the token budget is respected at every instant, with the single
      documented exception: one oversized head-of-queue request admitted
      while the scheduler was idle (the progress guarantee);
    * the concurrency cap is never exceeded;
    * every trace drains — no request waits forever once releases keep
      happening (no starvation).
    """

    def _check_invariants(self, scheduler: Scheduler, config: SchedulerConfig) -> None:
        assert scheduler.num_running <= config.max_active_requests
        if scheduler.tokens_in_flight > config.max_batch_tokens:
            assert scheduler.num_running == 1, (
                f"budget exceeded with {scheduler.num_running} running: "
                f"{scheduler.tokens_in_flight} > {config.max_batch_tokens}"
            )

    def _run_trace(self, cases: Cases) -> None:
        config = SchedulerConfig(
            max_active_requests=cases.integer(1, 4),
            max_batch_tokens=cases.integer(10, 120),
        )
        scheduler = Scheduler(config)
        total = cases.integer(1, 20)
        submitted: list = []
        admitted: list = []
        pending = total
        steps = 0
        while scheduler.has_work or pending > 0:
            steps += 1
            assert steps <= 20 * total + 20, "trace did not drain: starvation or deadlock"
            action = cases.integer(0, 2)
            if action == 0 and pending > 0:
                state = _state(
                    f"r{len(submitted)}",
                    prompt_len=cases.integer(1, 60),
                    max_new=cases.integer(1, 60),
                )
                submitted.append(state)
                scheduler.submit(state)
                pending -= 1
            elif action == 1:
                admitted.extend(scheduler.admit())
                self._check_invariants(scheduler, config)
            elif scheduler.running:
                scheduler.release(cases.choice(scheduler.running))
                self._check_invariants(scheduler, config)

        assert pending == 0 and not scheduler.has_work
        # FCFS end to end: every request was admitted, in submission order.
        assert [s.request.request_id for s in admitted] == [s.request.request_id for s in submitted]
        assert all(state.status is RequestStatus.FINISHED for state in submitted)

    def test_random_traces_quick(self):
        for_all(num_cases(50, 50), self._run_trace, seed=41)

    @pytest.mark.slow
    def test_random_traces_full(self):
        for_all(1500, self._run_trace, seed=42)

    def _run_trace_pages(self, cases: Cases) -> None:
        """Page-gated traces against a simulated block pool.

        Models exactly what the engine does: every ``admit`` passes the
        pool's current free pages (in tokens) plus a per-request overhead;
        an admitted request holds ``footprint + overhead`` page tokens until
        released.  Invariants: the pool never goes negative except for the
        one documented progress-guarantee admission (an oversized head on an
        idle scheduler), every page is returned by drain time (no page
        leaks), and page exhaustion only ever *defers* — the trace still
        drains without starvation or deadlock.
        """
        config = SchedulerConfig(
            max_active_requests=cases.integer(1, 4),
            max_batch_tokens=10_000,  # pages, not tokens, are the binding gate
        )
        scheduler = Scheduler(config)
        capacity = cases.integer(20, 200)
        overhead = cases.integer(0, 12)
        free = capacity
        page_cost: dict = {}
        total = cases.integer(1, 20)
        submitted: list = []
        admitted: list = []
        pending = total
        steps = 0
        while scheduler.has_work or pending > 0:
            steps += 1
            assert steps <= 20 * total + 20, "trace did not drain: page-gate deadlock"
            action = cases.integer(0, 2)
            if action == 0 and pending > 0:
                state = _state(
                    f"r{len(submitted)}",
                    prompt_len=cases.integer(1, 60),
                    max_new=cases.integer(1, 60),
                )
                submitted.append(state)
                scheduler.submit(state)
                pending -= 1
            elif action == 1:
                batch = scheduler.admit(free_page_tokens=free, page_overhead_tokens=overhead)
                for state in batch:
                    page_cost[state.request.request_id] = state.request.footprint_tokens + overhead
                    free -= page_cost[state.request.request_id]
                admitted.extend(batch)
                if free < 0:
                    assert scheduler.num_running == 1, (
                        f"pool overdrawn ({free}) with {scheduler.num_running} running: "
                        f"only the idle-scheduler progress guarantee may overshoot"
                    )
            elif scheduler.running:
                victim = cases.choice(scheduler.running)
                scheduler.release(victim)
                free += page_cost.pop(victim.request.request_id)

        assert pending == 0 and not scheduler.has_work
        assert free == capacity, f"page leak: {capacity - free} page tokens never returned"
        assert [s.request.request_id for s in admitted] == [s.request.request_id for s in submitted]
        assert all(state.status is RequestStatus.FINISHED for state in submitted)

    def test_page_gated_traces_quick(self):
        for_all(num_cases(50, 50), self._run_trace_pages, seed=47)

    @pytest.mark.slow
    def test_page_gated_traces_full(self):
        for_all(1500, self._run_trace_pages, seed=48)


class TestServingStats:
    def test_step_records_match_sequential(self, tiny_pipeline):
        """Per-step bookkeeping (proposed/accepted/committed) matches too."""
        prompts = _prompts(tiny_pipeline, 3)
        config = GenerationConfig.greedy_config(16)
        decoder = tiny_pipeline.decoder_for("ours")
        sequential = [decoder.generate_from_text(prompt, config) for prompt in prompts]

        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=3)
        request_ids = [engine.submit_text(prompt, config) for prompt in prompts]
        results = engine.run()
        for request_id, expected in zip(request_ids, sequential):
            got = results[request_id].step_records
            assert [(r.proposed, r.accepted, r.committed) for r in got] == [
                (r.proposed, r.accepted, r.committed) for r in expected.step_records
            ]

    def test_prefill_time_recorded(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        request_id = engine.submit_text("module adder", GenerationConfig.greedy_config(4))
        results = engine.run()
        assert results[request_id].prefill_seconds > 0.0
        assert results[request_id].wall_time_seconds >= results[request_id].prefill_seconds


class TestRaggedBatchedForward:
    """The shared forward must treat each ragged row like its own batch-1 run."""

    def test_ragged_rows_match_isolated_forwards(self, tiny_pipeline):
        model = tiny_pipeline.models["ntp"]
        tokenizer = tiny_pipeline.tokenizer
        from repro.nn.kv_cache import KVCache

        prompts = [
            tokenizer.encode("module a", add_bos=True),
            tokenizer.encode("module bigger_block (input clk)", add_bos=True),
        ]
        # Isolated: prefill each prompt in its own cache, then step one token.
        isolated = []
        caches = []
        for ids in prompts:
            cache = model.new_cache()
            base, _ = model.forward_hidden(np.asarray([ids], dtype=np.int64), cache=cache)
            isolated.append(base[0, -1])
            caches.append(cache)
        merged = KVCache.concat(caches)
        assert merged.batch == 2
        assert merged.lengths.tolist() == [len(prompts[0]), len(prompts[1])]

        step_tokens = np.asarray([[5], [7]], dtype=np.int64)
        batched_base, _ = model.forward_hidden(step_tokens, cache=merged)

        for row, (ids, token) in enumerate(zip(prompts, step_tokens[:, 0])):
            cache = model.new_cache()
            model.forward_hidden(np.asarray([ids], dtype=np.int64), cache=cache)
            single_base, _ = model.forward_hidden(np.asarray([[token]], dtype=np.int64), cache=cache)
            np.testing.assert_allclose(batched_base[row, -1], single_base[0, -1], atol=1e-5)


class TestChunkedPrefill:
    """Chunked prefill is a pure compute-layout change: token-identical outputs."""

    @pytest.mark.parametrize("method,strategy", METHODS)
    @pytest.mark.parametrize("chunk", [1, 3, 8])
    def test_chunked_matches_whole_prefill(self, tiny_pipeline, method, strategy, chunk):
        prompts = _prompts(tiny_pipeline, 4)
        config = GenerationConfig.greedy_config(12)
        decoder = tiny_pipeline.decoder_for(method)
        sequential = [decoder.generate_from_text(prompt, config) for prompt in prompts]

        engine = _engine(
            tiny_pipeline, method, strategy,
            max_active_requests=2, max_prefill_tokens_per_step=chunk,
        )
        request_ids = [engine.submit_text(prompt, config) for prompt in prompts]
        results = engine.run()
        for request_id, expected in zip(request_ids, sequential):
            assert results[request_id].token_ids == expected.token_ids

    def test_chunked_matches_whole_prefill_sampling(self, tiny_pipeline):
        prompts = _prompts(tiny_pipeline, 4)
        configs = [GenerationConfig.sampling_config(0.8, 14, seed=i) for i in range(len(prompts))]
        decoder = tiny_pipeline.decoder_for("ours")
        sequential = [decoder.generate_from_text(p, c) for p, c in zip(prompts, configs)]

        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            max_active_requests=2, max_prefill_tokens_per_step=4,
        )
        request_ids = [engine.submit_text(p, c) for p, c in zip(prompts, configs)]
        results = engine.run()
        for request_id, expected in zip(request_ids, sequential):
            assert results[request_id].token_ids == expected.token_ids

    def test_prefilling_status_and_interleaving(self, tiny_pipeline):
        """A long prompt under a small per-step budget sits in PREFILLING
        across steps while already-running requests keep decoding."""
        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            max_active_requests=2, max_prefill_tokens_per_step=2,
        )
        first = engine.submit_text("module adder (input clk);", GenerationConfig.greedy_config(20))
        engine.step()  # first request starts prefilling
        long_id = engine.submit_text(
            "module long_preamble_block (input clk, input rst, input [7:0] data_in);",
            GenerationConfig.greedy_config(4),
        )
        saw_prefilling = False
        saw_concurrent_decode = False
        for _ in range(200):
            if not engine.has_work:
                break
            state = engine._states[long_id]
            if state.status is RequestStatus.PREFILLING:
                saw_prefilling = True
                if len(engine._states[first].output_ids) > 0:
                    saw_concurrent_decode = True
            engine.step()
        assert not engine.has_work
        assert saw_prefilling, "long prompt never entered PREFILLING under a 2-token budget"
        assert saw_concurrent_decode, "decode did not interleave with chunked prefill"
        assert engine._states[long_id].status is RequestStatus.FINISHED

    def test_chunk_budget_validation(self):
        with pytest.raises(ValueError, match="max_prefill_tokens_per_step"):
            SchedulerConfig(max_prefill_tokens_per_step=0)


class TestPrefixReuse:
    """Cross-request prefix reuse: identical tokens, less prefill compute."""

    @pytest.mark.parametrize("method,strategy", METHODS)
    def test_reuse_matches_sequential(self, tiny_pipeline, method, strategy):
        prompts = _shared_prefix_prompts(tiny_pipeline, 4) * 2
        config = GenerationConfig.greedy_config(12)
        decoder = tiny_pipeline.decoder_for(method)
        sequential = [decoder.generate_from_text(prompt, config) for prompt in prompts]

        engine = _engine(
            tiny_pipeline, method, strategy,
            prefix_cache=PrefixCache(max_tokens=4096), max_active_requests=2,
        )
        request_ids = [engine.submit_text(prompt, config) for prompt in prompts]
        results = engine.run()
        for request_id, expected in zip(request_ids, sequential):
            assert results[request_id].token_ids == expected.token_ids
        stats = engine.prefix_cache_stats()
        assert stats["hits"] > 0
        assert stats["prompt_tokens_reused"] > 0
        assert 0.0 < stats["prefill_savings"] < 1.0

    def test_reuse_with_chunked_prefill_and_sampling(self, tiny_pipeline):
        prompts = _shared_prefix_prompts(tiny_pipeline, 4) * 2
        configs = [GenerationConfig.sampling_config(0.8, 12, seed=i) for i in range(len(prompts))]
        decoder = tiny_pipeline.decoder_for("ours")
        sequential = [decoder.generate_from_text(p, c) for p, c in zip(prompts, configs)]

        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            prefix_cache=PrefixCache(max_tokens=4096),
            max_active_requests=2, max_prefill_tokens_per_step=5,
        )
        request_ids = [engine.submit_text(p, c) for p, c in zip(prompts, configs)]
        results = engine.run()
        for request_id, expected in zip(request_ids, sequential):
            assert results[request_id].token_ids == expected.token_ids
        assert engine.prefix_cache_stats()["hits"] > 0

    def test_reuse_prefills_fewer_tokens_than_baseline(self, tiny_pipeline):
        prompts = _shared_prefix_prompts(tiny_pipeline, 4) * 2
        config = GenerationConfig.greedy_config(8)

        baseline = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=2)
        for prompt in prompts:
            baseline.submit_text(prompt, config)
        baseline.run()

        reuse = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            prefix_cache=PrefixCache(max_tokens=4096), max_active_requests=2,
        )
        for prompt in prompts:
            reuse.submit_text(prompt, config)
        reuse.run()

        baseline_prefilled = baseline.prefix_cache_stats()["prompt_tokens_prefilled"]
        reuse_stats = reuse.prefix_cache_stats()
        assert reuse_stats["prompt_tokens_prefilled"] < baseline_prefilled
        assert (
            reuse_stats["prompt_tokens_prefilled"] + reuse_stats["prompt_tokens_reused"]
            == baseline_prefilled
        )

    def test_reuse_survives_eviction_pressure(self, tiny_pipeline):
        """A tiny retention budget forces evictions mid-run; outputs stay right."""
        prompts = _shared_prefix_prompts(tiny_pipeline, 6)
        config = GenerationConfig.greedy_config(8)
        decoder = tiny_pipeline.decoder_for("ours")
        sequential = [decoder.generate_from_text(prompt, config) for prompt in prompts]

        cache = PrefixCache(max_tokens=40)  # holds roughly one prompt
        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            prefix_cache=cache, max_active_requests=1,
        )
        request_ids = [engine.submit_text(prompt, config) for prompt in prompts]
        results = engine.run()
        for request_id, expected in zip(request_ids, sequential):
            assert results[request_id].token_ids == expected.token_ids
        assert cache.num_tokens <= 40

    def test_per_request_reuse_surfaces_in_results(self, tiny_pipeline):
        """DecodeResult.prompt_tokens_reused sums to the engine-level total."""
        prompts = _shared_prefix_prompts(tiny_pipeline, 4) * 2
        config = GenerationConfig.greedy_config(6)
        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            prefix_cache=PrefixCache(max_tokens=4096), max_active_requests=2,
        )
        request_ids = [engine.submit_text(prompt, config) for prompt in prompts]
        results = engine.run()
        per_request = [results[request_id].prompt_tokens_reused for request_id in request_ids]
        assert sum(per_request) == engine.tokens_reused_total > 0
        # Sequential decoding never reuses.
        sequential = tiny_pipeline.decoder_for("ours").generate_from_text(prompts[0], config)
        assert sequential.prompt_tokens_reused == 0

    def test_prefix_cache_rejects_sharing_across_models(self, tiny_pipeline):
        """Retained K/V is model-specific: one cache cannot serve two models."""
        cache = PrefixCache(max_tokens=1024)
        _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, prefix_cache=cache)
        with pytest.raises(ValueError, match="different model"):
            _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP, prefix_cache=cache)
        # Sharing between engines wrapping the *same* model stays allowed.
        _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, prefix_cache=cache)

    def test_one_token_prompts_never_reuse(self, tiny_pipeline):
        """At least one prompt token is always prefilled (it produces the
        last-position logits), so a 1-token prompt cannot hit the cache."""
        engine = _engine(
            tiny_pipeline, "ntp", DecodingStrategy.NTP,
            prefix_cache=PrefixCache(max_tokens=4096),
        )
        config = GenerationConfig.greedy_config(4)
        bos = tiny_pipeline.tokenizer.vocab.bos_id
        first = engine.submit([bos], config)
        second = engine.submit([bos], config)
        results = engine.run()
        assert results[first].token_ids == results[second].token_ids
        stats = engine.prefix_cache_stats()
        assert stats["prompt_tokens_reused"] == 0


class TestFootprintClamp:
    """Regression: footprints are clamped to the context window (satellite fix)."""

    def test_request_footprint_clamped(self):
        request = GenerationRequest(
            request_id="r",
            prompt_ids=list(range(10)),
            config=GenerationConfig.greedy_config(10_000),
            context_limit=128,
        )
        assert request.footprint_tokens == 128

    def test_unclamped_without_context_limit(self):
        request = GenerationRequest(
            request_id="r",
            prompt_ids=list(range(10)),
            config=GenerationConfig.greedy_config(10_000),
        )
        assert request.footprint_tokens == 10_010

    def test_engine_submit_stamps_context_limit(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        max_seq_len = tiny_pipeline.models["ours"].backbone.max_seq_len
        request_id = engine.submit([2, 3, 4], GenerationConfig.greedy_config(10_000))
        state = engine._states[request_id]
        assert state.request.context_limit == max_seq_len
        assert state.request.footprint_tokens == max_seq_len

    def test_clamp_prevents_admission_starvation(self, tiny_pipeline):
        """Two requests with absurd max_new_tokens both fit a budget sized
        for two context windows; before the clamp the first one's inflated
        footprint starved the second forever."""
        max_seq_len = tiny_pipeline.models["ours"].backbone.max_seq_len
        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            max_active_requests=8, max_batch_tokens=2 * max_seq_len,
        )
        config = GenerationConfig.greedy_config(10 * max_seq_len)
        for _ in range(2):
            engine.submit([2, 3, 4, 5], config)
        engine.step()
        assert engine.scheduler.num_running == 2, (
            "clamped footprints must both fit a 2-window budget"
        )
        assert engine.scheduler.tokens_in_flight == 2 * max_seq_len
        engine.run()
        assert not engine.has_work


class TestSubmitValidation:
    """Satellite fix: requests are validated at the submission boundary."""

    def test_out_of_vocab_token_rejected(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        vocab_size = tiny_pipeline.models["ours"].vocab_size
        with pytest.raises(ValueError, match="vocabulary"):
            engine.submit([1, vocab_size])
        with pytest.raises(ValueError, match="vocabulary"):
            engine.submit([-1, 2])

    def test_empty_request_id_rejected(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        with pytest.raises(ValueError, match="non-empty"):
            engine.submit([1, 2], request_id="")

    def test_auto_ids_skip_caller_collisions(self, tiny_pipeline):
        """Auto-assigned ids must not collide with ids the caller picked."""
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)
        engine.submit([2, 3], GenerationConfig.greedy_config(2), request_id="req-0")
        auto_id = engine.submit([2, 3], GenerationConfig.greedy_config(2))
        assert auto_id != "req-0"
        results = engine.run()
        assert set(results) == {"req-0", auto_id}

    def test_failed_submission_leaves_engine_clean(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)
        with pytest.raises(ValueError):
            engine.submit([])
        assert not engine.has_work


class TestPrefillTiming:
    """Satellite fix: prefill_seconds times the model forward only, and does
    so identically whether prefill is whole, chunked, or partially reused."""

    def test_prefill_seconds_bounded_by_wall_time(self, tiny_pipeline):
        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            prefix_cache=PrefixCache(max_tokens=4096),
            max_prefill_tokens_per_step=3,
        )
        config = GenerationConfig.greedy_config(6)
        prompts = _shared_prefix_prompts(tiny_pipeline, 2)
        request_ids = [engine.submit_text(prompt, config) for prompt in prompts]
        results = engine.run()
        for request_id in request_ids:
            result = results[request_id]
            assert result.prefill_seconds > 0.0
            assert result.wall_time_seconds >= result.prefill_seconds


def _mixed_configs(count):
    """Greedy / sampling / tree-verify configs interleaved."""
    configs = []
    for index in range(count):
        if index % 3 == 0:
            configs.append(GenerationConfig.greedy_config(14, tree_verify=(index % 2 == 0)))
        else:
            configs.append(
                GenerationConfig.sampling_config(0.8, 12, seed=index, tree_verify=(index % 2 == 0))
            )
    return configs


class TestPagedKVMemory:
    """The paged block pool: token identity with the row oracle, zero-copy
    prefix hits, uniform stats, strictly lower peak memory, and no page
    leaks across completion and cancellation."""

    @pytest.mark.parametrize("method,strategy", METHODS)
    def test_row_oracle_matches_paged_default(self, tiny_pipeline, method, strategy):
        """kv_memory='row' and the paged default commit identical tokens
        under mixed greedy/sampling/tree configs, chunked prefill and prefix
        reuse — the tests' strongest cross-mode identity statement."""
        prompts = _shared_prefix_prompts(tiny_pipeline, 6)
        configs = _mixed_configs(len(prompts))

        outputs = {}
        for kv_memory in ("row", "paged"):
            engine = _engine(
                tiny_pipeline, method, strategy,
                kv_memory=kv_memory,
                prefix_cache=PrefixCache(max_tokens=4096),
                max_active_requests=3, max_prefill_tokens_per_step=7,
            )
            request_ids = [engine.submit_text(p, c) for p, c in zip(prompts, configs)]
            results = engine.run()
            outputs[kv_memory] = [results[request_id].token_ids for request_id in request_ids]
        assert outputs["paged"] == outputs["row"]

    def test_prefix_hits_are_zero_copy(self, tiny_pipeline):
        """Paged prefix hits alias pool pages: the engine's copy counter
        stays 0 while the row engine copies every reused position."""
        prompts = _shared_prefix_prompts(tiny_pipeline, 4) * 2
        config = GenerationConfig.greedy_config(8)
        counters = {}
        for kv_memory in ("paged", "row"):
            engine = _engine(
                tiny_pipeline, "ours", DecodingStrategy.OURS,
                kv_memory=kv_memory,
                prefix_cache=PrefixCache(max_tokens=4096), max_active_requests=2,
            )
            for prompt in prompts:
                engine.submit_text(prompt, config)
            engine.run()
            assert engine.prefix_cache_stats()["hits"] > 0
            counters[kv_memory] = engine.kv_pool_stats()["prefix_copy_tokens"]
        assert counters["paged"] == 0
        assert counters["row"] > 0

    def test_kv_pool_stats_uniform_keys(self, tiny_pipeline):
        """Both memory modes report the same stat keys, so ThroughputReport
        rows and dashboards need no per-mode branching."""
        config = GenerationConfig.greedy_config(4)
        stats = {}
        for kv_memory in ("paged", "row"):
            engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, kv_memory=kv_memory)
            engine.submit_text("module m (input clk);", config)
            engine.run()
            stats[kv_memory] = engine.kv_pool_stats()
        assert set(stats["paged"]) == set(stats["row"])
        assert stats["paged"]["kv_memory"] == "paged"
        assert stats["row"]["kv_memory"] == "row"
        assert stats["paged"]["peak_kv_bytes"] > 0
        assert stats["row"]["peak_kv_bytes"] > 0
        assert stats["paged"]["blocks_in_use"] == 0  # everything released at drain

    def test_paged_peak_kv_bytes_lower_on_shared_prefixes(self, tiny_pipeline):
        """The headline memory claim, at test scale: paged peak K/V bytes
        are strictly below the row engine's reserved-buffer peak on a
        shared-prefix workload (the bench asserts the same at bench scale)."""
        prompts = _shared_prefix_prompts(tiny_pipeline, 4) * 2
        config = GenerationConfig.greedy_config(8)
        peaks = {}
        for kv_memory in ("paged", "row"):
            engine = _engine(
                tiny_pipeline, "ours", DecodingStrategy.OURS,
                kv_memory=kv_memory,
                prefix_cache=PrefixCache(max_tokens=4096), max_active_requests=4,
            )
            for prompt in prompts:
                engine.submit_text(prompt, config)
            engine.run()
            peaks[kv_memory] = engine.kv_pool_stats()["peak_kv_bytes"]
        assert 0 < peaks["paged"] < peaks["row"]

    def test_pool_drains_after_run(self, tiny_pipeline):
        """No page leaks: after a run every block reference is back at zero
        (prefix-cache retention pins pages only until clear())."""
        config = GenerationConfig.greedy_config(6)
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=3)
        for prompt in _prompts(tiny_pipeline, 5):
            engine.submit_text(prompt, config)
        engine.run()
        assert engine._pool.blocks_in_use == 0
        assert np.all(engine._pool.refcounts == 0)

        cache = PrefixCache(max_tokens=4096)
        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            prefix_cache=cache, max_active_requests=3,
        )
        for prompt in _shared_prefix_prompts(tiny_pipeline, 5):
            engine.submit_text(prompt, config)
        engine.run()
        assert engine._pool.blocks_in_use > 0  # retention legitimately pins pages
        cache.clear()
        assert engine._pool.blocks_in_use == 0
        assert np.all(engine._pool.refcounts == 0)

    def test_cancel_frees_pages(self, tiny_pipeline):
        """Cancelling an in-flight request releases its pages immediately."""
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=2)
        victim = engine.submit_text(
            "module cancel_me (input clk, input rst);", GenerationConfig.greedy_config(200)
        )
        survivor = engine.submit_text("module keeper;", GenerationConfig.greedy_config(6))
        for _ in range(3):
            engine.step()
        held_before = engine._pool.blocks_in_use
        assert held_before > 0
        assert engine.cancel(victim)
        assert engine._pool.blocks_in_use < held_before
        engine.run()
        assert engine.result(victim).cancelled
        assert engine.result(survivor).tokens_generated > 0
        assert engine._pool.blocks_in_use == 0

    def test_tiny_pool_defers_admission_without_deadlock(self, tiny_pipeline):
        """A pool barely bigger than one request's worst case forces the
        page gate to serialise admission; every request still finishes with
        the tokens the sequential decoder commits."""
        prompts = _prompts(tiny_pipeline, 5)
        config = GenerationConfig.greedy_config(8)
        decoder = tiny_pipeline.decoder_for("ours")
        sequential = [decoder.generate_from_text(prompt, config) for prompt in prompts]

        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            kv_block_size=16, max_active_requests=8,
        )
        # One request's worst case: its clamped footprint plus the engine's
        # per-request page overhead, in blocks — plus two blocks of slack.
        overhead_tokens = engine._admission_kwargs()["page_overhead_tokens"]
        ids = [tiny_pipeline.tokenizer.encode(p, add_bos=True) for p in prompts]
        worst = max(len(i) for i in ids) + 8 + overhead_tokens
        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            kv_block_size=16, kv_pool_blocks=-(-worst // 16) + 2, max_active_requests=8,
        )
        request_ids = [engine.submit(i, config) for i in ids]
        max_running = 0
        for _ in range(10_000):
            if not engine.has_work:
                break
            engine.step()
            max_running = max(max_running, engine.scheduler.num_running)
        assert not engine.has_work, "tiny pool deadlocked admission"
        assert max_running < len(prompts), "page gate never deferred anything"
        for request_id, expected in zip(request_ids, sequential):
            assert engine.result(request_id).token_ids == expected.token_ids
        assert engine._pool.blocks_in_use == 0


class TestPagedEngineChurnFuzz:
    """Random submit/step/cancel churn against a deliberately small pool.

    The paged invariants under adversarial scheduling: the engine always
    drains (page exhaustion defers, never deadlocks), and every pool block
    reference returns to zero afterwards (no leaks through cancellation,
    retention, or mid-flight eviction)."""

    def _run_trace(self, cases: Cases, pipeline) -> None:
        prompts = _prompts(pipeline, 6)
        use_cache = cases.boolean()
        cache = PrefixCache(max_tokens=cases.integer(40, 512)) if use_cache else None
        probe = _engine(pipeline, "ours", DecodingStrategy.OURS, prefix_cache=cache)
        overhead_tokens = probe._admission_kwargs()["page_overhead_tokens"]
        ids = [pipeline.tokenizer.encode(p, add_bos=True) for p in prompts]
        worst = max(len(i) for i in ids) + 8 + overhead_tokens
        pool_blocks = -(-worst // 16) + cases.integer(2, 12)
        engine = _engine(
            pipeline, "ours", DecodingStrategy.OURS,
            prefix_cache=cache,
            kv_block_size=16, kv_pool_blocks=pool_blocks,
            max_active_requests=cases.integer(1, 4),
        )
        pending = list(range(cases.integer(2, 5)))
        submitted: list = []
        for _ in range(4000):
            if not pending and not engine.has_work:
                break
            action = cases.integer(0, 5)
            if action == 0 and pending:
                index = pending.pop()
                config = GenerationConfig.greedy_config(
                    cases.integer(1, 8), tree_verify=cases.boolean()
                )
                submitted.append(engine.submit(ids[index % len(ids)], config))
            elif action == 1 and submitted and cases.boolean(0.3):
                engine.cancel(cases.choice(submitted))
            elif engine.has_work:
                engine.step()
        assert not pending and not engine.has_work, "churn trace did not drain"
        for request_id in submitted:
            engine.result(request_id)  # every request produced a result
        if cache is not None:
            cache.clear()
        assert engine._pool.blocks_in_use == 0, "leaked pool blocks"
        assert np.all(engine._pool.refcounts == 0)

    def test_churn_traces(self, tiny_pipeline):
        for_all(num_cases(6, 12), lambda cases: self._run_trace(cases, tiny_pipeline), seed=51)
