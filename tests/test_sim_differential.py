"""Differential fuzzing: compiled simulation backend vs the interpreter oracle.

The compiled backend (:mod:`repro.sim.compiled`) is only allowed to be the
evalbench default because it is *proven* cycle-identical to the interpreter.
This suite generates seeded random designs + testbenches across the trace
shapes that exercise every scheduler region — combinational settle,
clocked/NBA batches, memory arrays, ``$finish`` vs timeout endings, shared
``$random`` stimulus — and asserts both backends produce identical
:class:`~repro.sim.simulator.SimulationResult` fields, identical ``$display``
bytes, and identical final signal state.  The vectorized batch path is held to
the same standard whenever a generated case falls inside its subset.

Abbreviated case counts run on every CI matrix job; the full-size sweep runs
under the ``slow`` marker (``--runslow`` / ``REPRO_RUN_SLOW=1``).
"""

from __future__ import annotations

from typing import Optional, Tuple

import pytest

from repro.evalbench.designs import combinational_testbench
from repro.sim.compiled import CompiledSimulator, simulate_batch
from repro.sim.rng import VerilogRng
from repro.sim.simulator import Simulator
from repro.sim.testbench import run_testbench, run_testbench_batch

from proptest import Cases, for_all, num_cases

SEED = 2024


def _run_backend(cls, design: str, testbench: str, max_time: int = 100_000):
    combined = design.rstrip() + "\n\n" + testbench
    top = testbench.split("module ", 1)[1].split(";")[0].split("(")[0].strip()
    simulator = cls(combined, top=top, max_time=max_time, rng=VerilogRng(99))
    result = simulator.run()
    return result, simulator.final_state()


def assert_backends_identical(design: str, testbench: str, max_time: int = 100_000) -> None:
    """The core oracle property: every observable field must match."""
    oracle, oracle_state = _run_backend(Simulator, design, testbench, max_time)
    compiled, compiled_state = _run_backend(CompiledSimulator, design, testbench, max_time)
    assert compiled.finished == oracle.finished, f"finished: {compiled.finished} != {oracle.finished}"
    assert compiled.time == oracle.time, f"time: {compiled.time} != {oracle.time}"
    assert compiled.cycles == oracle.cycles, f"cycles: {compiled.cycles} != {oracle.cycles}"
    assert compiled.error == oracle.error, f"error: {compiled.error!r} != {oracle.error!r}"
    assert compiled.display_lines == oracle.display_lines
    assert compiled.output == oracle.output
    assert compiled_state == oracle_state


def assert_batch_matches_oracle(design: str, testbench: str) -> None:
    """When the vector subset applies, it must reproduce the oracle exactly."""
    batch = simulate_batch([design], testbench)
    if batch is None or batch[0] is None:
        return  # outside the vectorizable subset: scalar fallback covers it
    oracle, _state = _run_backend(Simulator, design, testbench, max_time=200_000)
    vector = batch[0]
    assert vector.finished == oracle.finished
    assert vector.time == oracle.time
    assert vector.cycles == oracle.cycles
    assert vector.display_lines == oracle.display_lines
    assert vector.output == oracle.output


# --------------------------------------------------------------------------- #
# Random program generators
# --------------------------------------------------------------------------- #

_BINARY_OPS = ["+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=", ">", ">=", "&&", "||"]
_UNARY_OPS = ["~", "!", "&", "|", "^"]


def _random_expr(cases: Cases, names, depth: int) -> str:
    if depth <= 0 or cases.boolean(0.3):
        if cases.boolean(0.3):
            width = cases.integer(1, 8)
            return f"{width}'d{cases.integer(0, (1 << width) - 1)}"
        return cases.choice(names)
    kind = cases.integer(0, 3)
    if kind == 0:
        return f"({_random_expr(cases, names, depth - 1)} {cases.choice(_BINARY_OPS)} {_random_expr(cases, names, depth - 1)})"
    if kind == 1:
        return f"({cases.choice(_UNARY_OPS)}{_random_expr(cases, names, depth - 1)})"
    if kind == 2:
        cond = _random_expr(cases, names, depth - 1)
        return f"({cond} ? {_random_expr(cases, names, depth - 1)} : {_random_expr(cases, names, depth - 1)})"
    return f"{{{_random_expr(cases, names, depth - 1)}, {_random_expr(cases, names, depth - 1)}}}"


def _combinational_case(cases: Cases) -> Tuple[str, str]:
    """A random assign-network design plus a vector testbench for it.

    Expected values are random, so roughly half the checks fire — both the
    PASSED and the MISMATCH/FAILED display paths stay covered.
    """
    num_inputs = cases.integer(1, 3)
    inputs = [(f"i{n}", cases.integer(1, 12)) for n in range(num_inputs)]
    num_outputs = cases.integer(1, 3)
    outputs = [(f"o{n}", cases.integer(1, 12)) for n in range(num_outputs)]
    input_names = [name for name, _ in inputs]
    body = []
    for index, (name, _width) in enumerate(outputs):
        # Later outputs may read earlier ones: exercises cascaded settle.
        visible = input_names + [o for o, _w in outputs[:index]]
        body.append(f"    assign {name} = {_random_expr(cases, visible, cases.integer(1, 3))};")
    ports = [f"    input [{w - 1}:0] {n}" if w > 1 else f"    input {n}" for n, w in inputs]
    ports += [f"    output [{w - 1}:0] {n}" if w > 1 else f"    output {n}" for n, w in outputs]
    design = "module fuzz_comb (\n" + ",\n".join(ports) + "\n);\n" + "\n".join(body) + "\nendmodule\n"
    vectors = []
    for _ in range(cases.integer(1, 5)):
        driven = {name: cases.integer(0, (1 << width) - 1) for name, width in inputs}
        expected = {name: cases.integer(0, (1 << width) - 1) for name, width in outputs}
        vectors.append((driven, expected))
    testbench = combinational_testbench("fuzz_comb", inputs, outputs, vectors)
    return design, testbench


def _clocked_case(cases: Cases) -> Tuple[str, str]:
    """A random clocked design with NBA-heavy always blocks."""
    width = cases.integer(2, 10)
    const_a = cases.integer(1, (1 << width) - 1)
    const_b = cases.integer(0, (1 << width) - 1)
    use_reset = cases.boolean()
    mix_blocking = cases.boolean(0.3)
    stage2 = "q1 <= q0 ^ d;" if not mix_blocking else "q1 = q0 ^ d;"
    sensitivity = "posedge clk or posedge rst" if use_reset else "posedge clk"
    reset_arm = (
        "        if (rst) begin q0 <= 0; q1 <= 0; end\n        else begin\n"
        if use_reset
        else "        begin\n"
    )
    design = f"""module fuzz_seq (
    input clk,
    input rst,
    input [{width - 1}:0] d,
    output reg [{width - 1}:0] q0,
    output reg [{width - 1}:0] q1
);
    always @({sensitivity}) begin
{reset_arm}            q0 <= d + {width}'d{const_a};
            {stage2}
        end
    end
endmodule
"""
    cycles = cases.integer(2, 6)
    drives = []
    for step in range(cycles):
        value = cases.integer(0, (1 << width) - 1)
        drives.append(f"        d = {width}'d{value};")
        drives.append("        #10;")
        if cases.boolean(0.5):
            drives.append(f'        $display("cycle {step}: q0=%d q1=%b", q0, q1);')
    testbench = f"""module fuzz_seq_tb;
    reg clk;
    reg rst;
    reg [{width - 1}:0] d;
    wire [{width - 1}:0] q0;
    wire [{width - 1}:0] q1;
    fuzz_seq dut(.clk(clk), .rst(rst), .d(d), .q0(q0), .q1(q1));
    always #5 clk = ~clk;
    initial begin
        clk = 0;
        rst = 1;
        d = {width}'d{const_b};
        #12;
        rst = 0;
{chr(10).join(drives)}
        $display("final q0=%d q1=%d", q0, q1);
        $finish;
    end
endmodule
"""
    return design, testbench


def _array_case(cases: Cases) -> Tuple[str, str]:
    """A memory array written then read back, with random addressing."""
    width = cases.integer(2, 8)
    depth_bits = cases.integer(1, 3)
    depth = 1 << depth_bits
    writes = []
    for _ in range(cases.integer(2, 6)):
        addr = cases.integer(0, depth - 1)
        value = cases.integer(0, (1 << width) - 1)
        writes.append(f"        mem[{addr}] = {width}'d{value};")
    reads = []
    for _ in range(cases.integer(1, 4)):
        addr = cases.integer(0, depth - 1)
        reads.append(f'        $display("mem[{addr}]=%b", mem[{addr}]);')
    testbench = f"""module fuzz_mem_tb;
    reg [{width - 1}:0] mem [0:{depth - 1}];
    integer i;
    initial begin
{chr(10).join(writes)}
        #5;
{chr(10).join(reads)}
        for (i = 0; i < {depth}; i = i + 1) begin
            $display("sweep %d: %d", i, mem[i]);
        end
        $finish;
    end
endmodule
"""
    design = "module fuzz_mem_unused (input x, output y);\n    assign y = x;\nendmodule\n"
    return design, testbench


def _termination_case(cases: Cases) -> Tuple[str, str, int]:
    """Traces that end by ``$finish``, by quiescence, or by the time limit."""
    width = cases.integer(1, 6)
    period = cases.choice([4, 6, 10])
    mode = cases.choice(["finish", "timeout", "quiescent"])
    max_time = cases.choice([40, 73, 111])
    if mode == "finish":
        tail = f"        #{cases.integer(1, 30)};\n        $finish;"
        clock = "    always #%d clk = ~clk;" % period
    elif mode == "timeout":
        tail = "        // runs until the time limit"
        clock = "    always #%d clk = ~clk;" % period
    else:
        tail = f"        #{cases.integer(1, 20)};"
        clock = "    // no free-running clock: simulation goes quiescent"
    testbench = f"""module fuzz_term_tb;
    reg clk;
    reg [{width - 1}:0] n;
{clock}
    always @(posedge clk) n <= n + 1'b1;
    initial begin
        clk = 0;
        n = 0;
{tail}
    end
endmodule
"""
    design = "module fuzz_term_unused (input x, output y);\n    assign y = ~x;\nendmodule\n"
    return design, testbench, max_time


# --------------------------------------------------------------------------- #
# Differential properties
# --------------------------------------------------------------------------- #


def test_differential_combinational() -> None:
    def prop(cases: Cases) -> None:
        design, testbench = _combinational_case(cases)
        assert_backends_identical(design, testbench)
        assert_batch_matches_oracle(design, testbench)

    for_all(num_cases(quick=25, full=300), prop, seed=SEED)


def test_differential_clocked_nba() -> None:
    def prop(cases: Cases) -> None:
        design, testbench = _clocked_case(cases)
        assert_backends_identical(design, testbench)

    for_all(num_cases(quick=15, full=200), prop, seed=SEED + 1)


def test_differential_arrays() -> None:
    def prop(cases: Cases) -> None:
        design, testbench = _array_case(cases)
        assert_backends_identical(design, testbench)

    for_all(num_cases(quick=10, full=150), prop, seed=SEED + 2)


def test_differential_termination() -> None:
    def prop(cases: Cases) -> None:
        design, testbench, max_time = _termination_case(cases)
        assert_backends_identical(design, testbench, max_time=max_time)

    for_all(num_cases(quick=10, full=150), prop, seed=SEED + 3)


def test_differential_random_stimulus() -> None:
    """Both backends must consume the shared ``$random`` stream identically."""
    testbench = """module fuzz_rand_tb;
    reg [7:0] a;
    reg [7:0] b;
    wire [8:0] s;
    integer i;
    fuzz_rand_add dut(.a(a), .b(b), .s(s));
    initial begin
        for (i = 0; i < 8; i = i + 1) begin
            a = $random;
            b = $random % 17;
            #10;
            $display("%d + %d -> %d (urandom %d)", a, b, s, $urandom);
        end
        $finish;
    end
endmodule
"""
    design = """module fuzz_rand_add (
    input [7:0] a,
    input [7:0] b,
    output [8:0] s
);
    assign s = a + b;
endmodule
"""
    assert_backends_identical(design, testbench)


# --------------------------------------------------------------------------- #
# $random stream regression
# --------------------------------------------------------------------------- #


def test_verilog_rng_pinned_sequence() -> None:
    """The LCG behind ``$random`` is frozen: changing it would silently break
    replayability of every recorded simulation. First draws are pinned."""
    rng = VerilogRng(VerilogRng.DEFAULT_SEED)
    assert [rng.next_value() for _ in range(5)] == [
        1406932606,
        654583775,
        1449466924,
        229283573,
        1109335178,
    ]
    fresh = VerilogRng(VerilogRng.DEFAULT_SEED)
    clone = fresh.clone()
    assert fresh.next_value() == clone.next_value()


def test_rng_seed_controls_testbench_stream() -> None:
    design = "module rseed (input x, output y);\n    assign y = x;\nendmodule\n"
    testbench = """module rseed_tb;
    reg x;
    wire y;
    rseed dut(.x(x), .y(y));
    initial begin
        x = 0;
        #1;
        $display("draw %d %d", $random, $random);
        $finish;
    end
endmodule
"""
    interp = run_testbench(design, testbench, backend="interpreter", random_seed=7)
    compiled = run_testbench(design, testbench, backend="compiled", random_seed=7)
    assert interp.output == compiled.output
    other = run_testbench(design, testbench, backend="compiled", random_seed=8)
    assert other.output != compiled.output


def test_unknown_backend_rejected() -> None:
    with pytest.raises(ValueError, match="unknown simulation backend"):
        run_testbench("module m; endmodule", "module tb; endmodule", backend="verilator")
    with pytest.raises(ValueError, match="unknown simulation backend"):
        run_testbench_batch([], "module tb; endmodule", backend="verilator")


# --------------------------------------------------------------------------- #
# Batched runner equivalence
# --------------------------------------------------------------------------- #


def test_run_testbench_batch_matches_scalar() -> None:
    def prop(cases: Cases) -> None:
        design, testbench = _combinational_case(cases)
        mutated = design.replace("assign o0 =", "assign o0 = 1'd1 ^", 1)
        broken = design.replace(";", "", 1)  # syntax error candidate
        candidates = [design, mutated, broken]
        batch = run_testbench_batch(candidates, testbench)
        for candidate, got in zip(candidates, batch):
            want = run_testbench(candidate, testbench)
            assert got.compiled == want.compiled
            assert got.simulated == want.simulated
            assert got.passed == want.passed
            assert got.output == want.output

    for_all(num_cases(quick=8, full=60), prop, seed=SEED + 4)


@pytest.mark.slow
def test_differential_full_sweep() -> None:
    """Full-size randomized sweep across every generator family."""

    def prop(cases: Cases) -> None:
        family = cases.integer(0, 3)
        if family == 0:
            design, testbench = _combinational_case(cases)
            assert_backends_identical(design, testbench)
            assert_batch_matches_oracle(design, testbench)
        elif family == 1:
            design, testbench = _clocked_case(cases)
            assert_backends_identical(design, testbench)
        elif family == 2:
            design, testbench = _array_case(cases)
            assert_backends_identical(design, testbench)
        else:
            design, testbench, max_time = _termination_case(cases)
            assert_backends_identical(design, testbench, max_time=max_time)

    for_all(400, prop, seed=SEED + 5)
