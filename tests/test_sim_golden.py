"""Golden simulation fixtures for every reference design + testbench.

``tests/golden/sim_reference_designs.json`` freezes, for each problem in the
RTLLM-style and VGen-style suites, the interpreter's observable simulation
outcome: result fields, every ``$display`` line, and the final value of every
signal.  Both backends — the interpreter oracle and the compiled fast path —
must reproduce the frozen record exactly, so a semantics regression in either
one (or an unintentional change to the reference designs/testbenches) fails
loudly here instead of drifting.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python scripts/regen_golden.py --only sim
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import pytest

from repro.evalbench.rtllm import rtllm_suite
from repro.evalbench.vgen import vgen_suite
from repro.sim.compiled import CompiledSimulator
from repro.sim.rng import VerilogRng
from repro.sim.simulator import Simulator

GOLDEN_PATH = Path(__file__).parent / "golden" / "sim_reference_designs.json"

#: Seed pinned into the fixtures; both backends must draw the same stream.
GOLDEN_SEED = VerilogRng.DEFAULT_SEED

BACKEND_CLASSES = {"interpreter": Simulator, "compiled": CompiledSimulator}


def golden_problems():
    """Every reference design + testbench frozen by the fixture, by name."""
    problems = []
    for suite in (rtllm_suite(), vgen_suite()):
        for problem in suite:
            problems.append((f"{suite.name}/{problem.name}", problem))
    return problems


def capture_sim_case(name: str, design: str, testbench: str, backend: str = "interpreter") -> Dict:
    """Run one reference design and serialise its observable outcome."""
    combined = design.rstrip() + "\n\n" + testbench
    simulator = BACKEND_CLASSES[backend](
        combined, max_time=200_000, max_events=200_000, rng=VerilogRng(GOLDEN_SEED)
    )
    result = simulator.run()
    return {
        "name": name,
        "finished": result.finished,
        "time": result.time,
        "cycles": result.cycles,
        "error": result.error,
        "display_lines": result.display_lines,
        "final_state": simulator.final_state(),
    }


@pytest.fixture(scope="module")
def golden_cases() -> Dict[str, Dict]:
    assert GOLDEN_PATH.exists(), (
        "missing golden fixture; run: PYTHONPATH=src python scripts/regen_golden.py --only sim"
    )
    fixture = json.loads(GOLDEN_PATH.read_text())
    return {case["name"]: case for case in fixture["cases"]}


def test_fixture_covers_every_reference_problem(golden_cases) -> None:
    expected = {name for name, _problem in golden_problems()}
    assert set(golden_cases) == expected


@pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES))
def test_backends_reproduce_golden_simulations(backend: str, golden_cases) -> None:
    mismatches = []
    for name, problem in golden_problems():
        frozen = golden_cases.get(name)
        if frozen is None:
            mismatches.append(f"{name}: missing from fixture")
            continue
        live = capture_sim_case(name, problem.reference, problem.testbench, backend=backend)
        for key in ("finished", "time", "cycles", "error", "display_lines", "final_state"):
            if live[key] != frozen[key]:
                mismatches.append(f"{name} [{backend}]: {key} diverged")
    assert not mismatches, "\n".join(mismatches)


def test_golden_simulations_all_pass() -> None:
    """Every frozen reference run must actually PASS its own testbench —
    a reference that fails its testbench would make functional pass@k
    grading meaningless."""
    fixture = json.loads(GOLDEN_PATH.read_text())
    failing = [
        case["name"]
        for case in fixture["cases"]
        if not case["finished"] or "TEST PASSED" not in "\n".join(case["display_lines"])
    ]
    assert not failing, f"reference designs failing their own testbench: {failing}"
