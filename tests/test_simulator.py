"""Tests for the event-driven simulator."""

import pytest

from repro.sim.simulator import SimulationError, Simulator
from repro.sim.testbench import run_testbench


def _simulate(source, top=None, max_time=100_000):
    simulator = Simulator(source, top=top)
    return simulator, simulator.run(max_time=max_time)


class TestElaboration:
    def test_signals_created_with_widths(self, sample_design):
        simulator = Simulator(sample_design, top="data_register")
        assert simulator.signals["data_in"].width == 4
        assert simulator.signals["data_out"].width == 4
        assert simulator.signals["clk"].width == 1

    def test_parameter_width(self, sample_counter):
        simulator = Simulator(sample_counter, top="counter")
        assert simulator.signals["count"].width == 8

    def test_parameter_override_through_instance(self, sample_counter):
        source = sample_counter + """
module top;
    reg clk, rst, en;
    wire [3:0] c;
    counter #(.WIDTH(4)) u0(.clk(clk), .rst(rst), .en(en), .count(c));
endmodule
"""
        simulator = Simulator(source, top="top")
        assert simulator.signals["u0.count"].width == 4

    def test_top_inference_prefers_testbench(self, sample_design):
        source = sample_design + "\nmodule data_register_tb; data_register dut(); endmodule\n"
        simulator = Simulator(source)
        assert simulator.top_name == "data_register_tb"

    def test_unknown_top_raises(self, sample_design):
        with pytest.raises(SimulationError):
            Simulator(sample_design, top="missing")

    def test_unknown_submodule_raises(self):
        source = "module top; notdefined u0(); endmodule"
        with pytest.raises(SimulationError):
            Simulator(source, top="top")

    def test_memory_array_declared(self):
        source = "module m; reg [7:0] mem [0:15]; endmodule"
        simulator = Simulator(source, top="m")
        assert simulator.signals["mem"].is_array
        assert simulator.signals["mem"].array_size == 16


class TestInitialBlocks:
    def test_display_and_finish(self):
        source = """
module m;
    initial begin
        $display("hello %d", 42);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.finished
        assert result.display_lines == ["hello 42"]

    def test_display_formats(self):
        source = """
module m;
    reg [7:0] v;
    initial begin
        v = 8'hA5;
        $display("d=%d h=%h b=%b", v, v, v);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["d=165 h=a5 b=10100101"]

    def test_time_advances_with_delays(self):
        source = """
module m;
    initial begin
        #25;
        $display("t=%t", $time);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.time == 25
        assert result.display_lines == ["t=25"]

    def test_blocking_assignment_order(self):
        source = """
module m;
    reg [3:0] a, b;
    initial begin
        a = 4'd1;
        b = a + 1;
        $display("%d %d", a, b);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["1 2"]

    def test_quiescence_without_finish(self):
        source = "module m; reg x; initial x = 1; endmodule"
        _, result = _simulate(source, top="m")
        assert not result.finished
        assert result.error is None

    def test_for_loop(self):
        source = """
module m;
    integer i;
    reg [7:0] acc;
    initial begin
        acc = 0;
        for (i = 0; i < 5; i = i + 1) acc = acc + i;
        $display("%d", acc);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["10"]

    def test_while_loop(self):
        source = """
module m;
    integer i;
    initial begin
        i = 0;
        while (i < 3) i = i + 1;
        $display("%d", i);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["3"]

    def test_repeat_loop(self):
        source = """
module m;
    integer i;
    initial begin
        i = 0;
        repeat (4) i = i + 2;
        $display("%d", i);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["8"]

    def test_random_is_deterministic(self):
        source = """
module m;
    integer a, b;
    initial begin
        a = $random;
        b = $random;
        $display("%d", a == b);
        $finish;
    end
endmodule
"""
        _, first = _simulate(source, top="m")
        _, second = _simulate(source, top="m")
        assert first.display_lines == second.display_lines


class TestContinuousAssign:
    def test_simple_assign(self):
        source = """
module m;
    reg [3:0] a, b;
    wire [3:0] y;
    assign y = a & b;
    initial begin
        a = 4'b1100; b = 4'b1010;
        #1;
        $display("%b", y);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["1000"]

    def test_assign_chains_propagate(self):
        source = """
module m;
    reg [3:0] a;
    wire [3:0] b, c;
    assign b = a + 1;
    assign c = b + 1;
    initial begin
        a = 4'd1;
        #1;
        $display("%d", c);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["3"]

    def test_concatenation_lhs_keeps_carry(self):
        source = """
module m;
    reg [3:0] a, b;
    wire [3:0] sum;
    wire cout;
    assign {cout, sum} = a + b;
    initial begin
        a = 4'hF; b = 4'h1;
        #1;
        $display("%d %d", cout, sum);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["1 0"]

    def test_gate_primitives(self):
        source = """
module m;
    reg a, b;
    wire y_and, y_or, y_not, y_xor;
    and g0(y_and, a, b);
    or g1(y_or, a, b);
    not g2(y_not, a);
    xor g3(y_xor, a, b);
    initial begin
        a = 1; b = 0;
        #1;
        $display("%b%b%b%b", y_and, y_or, y_not, y_xor);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["0101"]


class TestAlwaysBlocks:
    def test_clocked_register(self, sample_design):
        source = sample_design + """
module tb;
    reg clk = 0;
    reg [3:0] data_in;
    wire [3:0] data_out;
    data_register dut(.clk(clk), .data_in(data_in), .data_out(data_out));
    always #5 clk = ~clk;
    initial begin
        data_in = 4'd7;
        #12;
        $display("%d", data_out);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="tb")
        assert result.display_lines == ["7"]

    def test_nonblocking_swap(self):
        source = """
module m;
    reg clk = 0;
    reg [3:0] a, b;
    always @(posedge clk) begin
        a <= b;
        b <= a;
    end
    initial begin
        a = 4'd1; b = 4'd2;
        #1 clk = 1;
        #1;
        $display("%d %d", a, b);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["2 1"]

    def test_async_reset_has_priority(self, sample_counter):
        source = sample_counter + """
module tb;
    reg clk = 0, rst, en;
    wire [7:0] count;
    counter dut(.clk(clk), .rst(rst), .en(en), .count(count));
    always #5 clk = ~clk;
    initial begin
        rst = 1; en = 1;
        #23;
        $display("%d", count);
        rst = 0;
        #20;
        $display("%d", count);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="tb")
        assert result.display_lines[0] == "0"
        assert int(result.display_lines[1]) == 2

    def test_combinational_always_star(self):
        source = """
module m;
    reg [3:0] a, b;
    reg [3:0] y;
    always @* y = a | b;
    initial begin
        a = 4'b0011; b = 4'b1000;
        #1;
        $display("%b", y);
        a = 4'b0100;
        #1;
        $display("%b", y);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["1011", "1100"]

    def test_case_statement_fsm(self):
        source = """
module m;
    reg clk = 0, rst;
    reg [1:0] state;
    always #5 clk = ~clk;
    always @(posedge clk or posedge rst) begin
        if (rst) state <= 2'd0;
        else begin
            case (state)
                2'd0: state <= 2'd1;
                2'd1: state <= 2'd2;
                default: state <= 2'd0;
            endcase
        end
    end
    initial begin
        rst = 1;
        #12 rst = 0;
        #10 $display("%d", state);
        #10 $display("%d", state);
        #10 $display("%d", state);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["1", "2", "0"]

    def test_memory_write_and_read(self):
        source = """
module m;
    reg clk = 0;
    reg [7:0] mem [0:3];
    reg [7:0] out;
    always #5 clk = ~clk;
    initial begin
        mem[0] = 8'd11;
        mem[1] = 8'd22;
        out = mem[1];
        $display("%d %d", mem[0], out);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["11 22"]

    def test_always_without_suspend_raises(self):
        source = "module m; reg x; always x = ~x; endmodule"
        simulator = Simulator(source, top="m")
        result = simulator.run()
        assert result.error is not None

    def test_event_limit_guards_runaway(self):
        source = """
module m;
    reg clk = 0;
    always #1 clk = ~clk;
endmodule
"""
        simulator = Simulator(source, top="m", max_events=500)
        result = simulator.run()
        assert result.error is not None or result.time <= simulator.max_time


class TestHierarchy:
    def test_two_level_hierarchy(self):
        source = """
module half_adder(input a, input b, output sum, output carry);
    assign sum = a ^ b;
    assign carry = a & b;
endmodule
module full_adder(input a, input b, input cin, output sum, output cout);
    wire s1, c1, c2;
    half_adder ha1(.a(a), .b(b), .sum(s1), .carry(c1));
    half_adder ha2(.a(s1), .b(cin), .sum(sum), .carry(c2));
    assign cout = c1 | c2;
endmodule
module tb;
    reg a, b, cin;
    wire sum, cout;
    full_adder dut(.a(a), .b(b), .cin(cin), .sum(sum), .cout(cout));
    initial begin
        a = 1; b = 1; cin = 1;
        #1;
        $display("%b %b", cout, sum);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="tb")
        assert result.display_lines == ["1 1"]

    def test_user_function_evaluation(self):
        source = """
module m;
    reg [7:0] x;
    function [7:0] double;
        input [7:0] v;
        begin
            double = v * 2;
        end
    endfunction
    initial begin
        x = double(8'd21);
        $display("%d", x);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["42"]

    def test_user_task_with_delay(self):
        source = """
module m;
    reg [7:0] seen;
    task record;
        input [7:0] value;
        begin
            #5;
            seen = value;
        end
    endtask
    initial begin
        record(8'd9);
        $display("%d %t", seen, $time);
        $finish;
    end
endmodule
"""
        _, result = _simulate(source, top="m")
        assert result.display_lines == ["9 5"]


class TestRunTestbench:
    def test_passing_design(self, sample_design):
        testbench = """
module tb;
    reg clk = 0;
    reg [3:0] data_in;
    wire [3:0] data_out;
    data_register dut(.clk(clk), .data_in(data_in), .data_out(data_out));
    always #5 clk = ~clk;
    initial begin
        data_in = 4'd3;
        #12;
        if (data_out === 4'd3) $display("TEST PASSED");
        else $display("TEST FAILED");
        $finish;
    end
endmodule
"""
        result = run_testbench(sample_design, testbench)
        assert result.compiled and result.simulated and result.passed

    def test_failing_design_detected(self):
        broken = """
module data_register(input clk, input [3:0] data_in, output reg [3:0] data_out);
    always @(posedge clk) data_out <= ~data_in;
endmodule
"""
        testbench = """
module tb;
    reg clk = 0;
    reg [3:0] data_in;
    wire [3:0] data_out;
    data_register dut(.clk(clk), .data_in(data_in), .data_out(data_out));
    always #5 clk = ~clk;
    initial begin
        data_in = 4'd3;
        #12;
        if (data_out === 4'd3) $display("TEST PASSED");
        else $display("TEST FAILED");
        $finish;
    end
endmodule
"""
        result = run_testbench(broken, testbench)
        assert result.compiled and result.simulated and not result.passed

    def test_unparseable_design_fails_compile(self):
        result = run_testbench("module broken(", "module tb; initial $finish; endmodule")
        assert not result.compiled
        assert not result.passed

    def test_missing_module_fails_compile(self):
        result = run_testbench(
            "module other(); endmodule",
            "module tb; wire x; data_register dut(.data_out(x)); initial $finish; endmodule",
        )
        assert not result.compiled
