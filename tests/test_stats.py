"""Small-sample audit of the shared percentile helpers.

Every latency column (`ThroughputReport`, `stream_metrics` consumers, the
traffic harness's replay report and dashboard) funnels through
:mod:`repro.evalbench.stats`.  These tests pin the linear-interpolation
semantics on exactly the populations the serving benches hit: empty,
single-element, and small-n series where a nearest-rank rule would
systematically jump to the max.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evalbench.stats import percentile, summarize_series


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0
        assert percentile([], 95) == 0.0

    def test_single_element_every_q(self):
        for q in (0, 1, 50, 95, 99, 100):
            assert percentile([3.5], q) == 3.5

    def test_two_elements_interpolate(self):
        assert percentile([1.0, 3.0], 50) == 2.0
        # p95 sits 90% of the way from min to max, not at the max.
        assert percentile([1.0, 3.0], 95) == pytest.approx(2.9)

    def test_endpoints_are_min_and_max(self):
        values = [5.0, 1.0, 4.0, 2.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_small_n_p95_below_max(self):
        # The off-by-one failure mode a nearest-rank rule introduces: for
        # n < 20 distinct samples, p95 must interpolate below the max.
        for n in range(2, 20):
            values = [float(i) for i in range(n)]
            assert percentile(values, 95) < max(values)
            assert percentile(values, 95) > min(values)

    def test_matches_numpy_linear_rule(self):
        rng = np.random.default_rng(0)
        for n in (2, 3, 5, 7, 19, 100):
            values = rng.uniform(0, 10, size=n).tolist()
            for q in (25, 50, 90, 95, 99):
                assert percentile(values, q) == pytest.approx(
                    float(np.percentile(values, q))
                )

    def test_order_independent(self):
        values = [9.0, 1.0, 5.0, 3.0, 7.0]
        assert percentile(values, 95) == percentile(sorted(values), 95)

    def test_none_entries_dropped(self):
        assert percentile([None, 2.0, None], 50) == 2.0
        assert percentile([None, None], 95) == 0.0

    @pytest.mark.parametrize("q", [-1, 100.5, 1e9])
    def test_out_of_range_q_rejected(self, q):
        with pytest.raises(ValueError, match="percentile"):
            percentile([1.0], q)

    def test_constant_series(self):
        assert percentile([4.0] * 7, 95) == 4.0


class TestSummarizeSeries:
    def test_empty(self):
        assert summarize_series([]) == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0}

    def test_shape_and_values(self):
        summary = summarize_series([1.0, 2.0, 3.0])
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["p50"] == 2.0
        assert summary["p95"] == pytest.approx(2.9)

    def test_none_entries_dropped(self):
        summary = summarize_series([None, 4.0])
        assert summary == {"count": 1, "mean": 4.0, "p50": 4.0, "p95": 4.0}


class TestSharedAcrossReports:
    def test_throughput_report_uses_the_shared_helper(self):
        # The audit's fix: one percentile definition for every report
        # surface.  The throughput module must alias, not duplicate.
        from repro.evalbench import throughput

        assert throughput._percentile is percentile
