"""Tests for the async streaming front-end, cancellation and priorities.

The streaming layer's core guarantee is that it is **observation-only**: the
concatenation of streamed bursts equals the batch ``result().token_ids``
byte-for-byte, for every decode mode the engine supports (NTP/Medusa/Ours ×
greedy/sampling × tree verification × chunked prefill × prefix reuse).
Cancellation must free a request's scheduler budget and cache rows in the
same step whatever its status — queued, mid-prefill or mid-decode — and
deadlines surface as :class:`RequestDeadlineExceeded` on the handle.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.decoding import DecodingStrategy
from repro.models.generation import GenerationConfig
from repro.serving import (
    AsyncServingEngine,
    PrefixCache,
    PriorityConfig,
    RequestCancelled,
    RequestDeadlineExceeded,
    RequestStatus,
    SchedulerConfig,
    ServingEngine,
)

METHODS = [
    ("ntp", DecodingStrategy.NTP),
    ("medusa", DecodingStrategy.MEDUSA),
    ("ours", DecodingStrategy.OURS),
]

LONG_PROMPT = (
    "module long_streaming_block (input clk, input rst, input [7:0] data_in, "
    "output reg [7:0] data_out);"
)


def _prompts(pipeline, count):
    prompts = [example.prompt_text() for example in pipeline.examples]
    return (prompts * (count // max(len(prompts), 1) + 1))[:count]


def _engine(pipeline, method, strategy, prefix_cache=None, **scheduler_kwargs):
    return ServingEngine(
        pipeline.models[method],
        pipeline.tokenizer,
        strategy=strategy,
        scheduler_config=SchedulerConfig(**scheduler_kwargs) if scheduler_kwargs else None,
        prefix_cache=prefix_cache,
    )


async def _stream_all(engine, prompts, configs):
    """Submit every prompt, consume every stream concurrently; return streams+results."""
    streamed = [[] for _ in prompts]
    async with AsyncServingEngine(engine) as server:
        handles = [await server.submit_text(p, c) for p, c in zip(prompts, configs)]

        async def consume(index, handle):
            async for burst in handle.stream():
                assert burst, "empty burst streamed"
                streamed[index].extend(burst)
            return await handle.result()

        results = list(await asyncio.gather(*(consume(i, h) for i, h in enumerate(handles))))
    return streamed, results


class TestStreamingEquivalence:
    """Streamed bursts must concatenate to exactly the batch result tokens."""

    @pytest.mark.parametrize("method,strategy", METHODS)
    def test_stream_matches_result_greedy_and_sampling(self, tiny_pipeline, method, strategy):
        prompts = _prompts(tiny_pipeline, 6)
        configs = [
            GenerationConfig.greedy_config(18)
            if index % 2 == 0
            else GenerationConfig.sampling_config(0.8, 16, seed=index)
            for index in range(len(prompts))
        ]
        decoder = tiny_pipeline.decoder_for(method)
        sequential = [decoder.generate_from_text(p, c) for p, c in zip(prompts, configs)]

        engine = _engine(tiny_pipeline, method, strategy, max_active_requests=3)
        streamed, results = asyncio.run(_stream_all(engine, prompts, configs))

        for tokens, result, expected in zip(streamed, results, sequential):
            assert tokens == result.token_ids == expected.token_ids
            assert not result.cancelled

    @pytest.mark.parametrize("method,strategy", METHODS)
    def test_stream_matches_result_tree_verify(self, tiny_pipeline, method, strategy):
        prompts = _prompts(tiny_pipeline, 4)
        configs = [
            GenerationConfig.greedy_config(14, tree_verify=True)
            if index % 2 == 0
            else GenerationConfig.sampling_config(0.8, 14, seed=index, tree_verify=True)
            for index in range(len(prompts))
        ]
        decoder = tiny_pipeline.decoder_for(method)
        sequential = [decoder.generate_from_text(p, c) for p, c in zip(prompts, configs)]

        engine = _engine(tiny_pipeline, method, strategy, max_active_requests=4)
        streamed, results = asyncio.run(_stream_all(engine, prompts, configs))
        for tokens, result, expected in zip(streamed, results, sequential):
            assert tokens == result.token_ids == expected.token_ids

    @pytest.mark.parametrize("method,strategy", METHODS)
    def test_stream_matches_result_chunked_prefill_and_prefix_reuse(
        self, tiny_pipeline, method, strategy
    ):
        preamble = "// Task: implement the following Verilog module exactly as specified.\n"
        prompts = [preamble + p for p in _prompts(tiny_pipeline, 4)] * 2
        config = GenerationConfig.greedy_config(12)
        decoder = tiny_pipeline.decoder_for(method)
        sequential = [decoder.generate_from_text(p, config) for p in prompts]

        engine = _engine(
            tiny_pipeline, method, strategy,
            prefix_cache=PrefixCache(max_tokens=4096),
            max_active_requests=2, max_prefill_tokens_per_step=5,
        )
        streamed, results = asyncio.run(_stream_all(engine, prompts, [config] * len(prompts)))
        for tokens, result, expected in zip(streamed, results, sequential):
            assert tokens == result.token_ids == expected.token_ids
        assert engine.prefix_cache_stats()["hits"] > 0

    def test_bursts_match_step_records(self, tiny_pipeline):
        """Each streamed burst is exactly one step's committed run."""
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        config = GenerationConfig.greedy_config(16)

        async def run():
            async with AsyncServingEngine(engine) as server:
                handle = await server.submit_text(_prompts(tiny_pipeline, 1)[0], config)
                bursts = [burst async for burst in handle.stream()]
                return bursts, await handle.result()

        bursts, result = asyncio.run(run())
        assert [len(burst) for burst in bursts] == [r.committed for r in result.step_records]

    def test_stream_metrics_series(self, tiny_pipeline):
        """TTFT is positive and the inter-token series covers every token
        after the first burst (the series is the smoothed per-token rate)."""
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        config = GenerationConfig.greedy_config(12)
        request_id = engine.submit_text(_prompts(tiny_pipeline, 1)[0], config)
        engine.run()
        metrics = engine.stream_metrics(request_id)
        result = engine.result(request_id)
        assert metrics["ttft_seconds"] > 0.0
        first_burst = metrics["commit_events"][0][1]
        assert len(metrics["inter_token_seconds"]) == result.tokens_generated - first_burst
        assert sum(n for _, n in metrics["commit_events"]) == result.tokens_generated
        # The series integrates back to the first-to-last commit span.
        span = metrics["commit_events"][-1][0] - metrics["commit_events"][0][0]
        assert abs(sum(metrics["inter_token_seconds"]) - span) < 1e-9


class TestStreamingMeasurement:
    """evalbench's streaming harness: real async run, populated latency columns."""

    def test_measure_streaming_throughput(self, tiny_pipeline):
        from repro.evalbench.throughput import measure_streaming_throughput

        prompts = _prompts(tiny_pipeline, 3)
        config = GenerationConfig.greedy_config(10)
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=3)
        report, results, streamed = measure_streaming_throughput(
            engine, prompts, config, label="tiny-stream"
        )
        assert streamed == [result.token_ids for result in results]
        assert report.num_requests == len(prompts)
        assert report.total_tokens == sum(result.tokens_generated for result in results)
        assert report.p95_ttft >= report.p50_ttft > 0.0
        assert report.mean_ttft > 0.0
        assert report.p95_itl >= report.p50_itl > 0.0
        payload = report.to_dict()
        for column in ("mean_ttft", "p50_ttft", "p95_ttft", "p50_itl", "p95_itl"):
            assert payload[column] == getattr(report, column)

    def test_batch_measurement_populates_ttft_too(self, tiny_pipeline):
        """measure_serving_throughput (sync engine.run) fills the same columns
        from the engine-side commit timelines."""
        from repro.evalbench.throughput import measure_serving_throughput

        prompts = _prompts(tiny_pipeline, 3)
        config = GenerationConfig.greedy_config(8)
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=3)
        report, results = measure_serving_throughput(engine, prompts, config)
        assert len(results) == len(prompts)
        assert report.mean_ttft > 0.0
        assert report.p95_itl >= report.p50_itl > 0.0


class TestCancellation:
    """Cancellation frees budget and rows immediately, in every status."""

    def test_cancel_queued_releases_slot_same_step(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=1)
        config = GenerationConfig.greedy_config(8)
        first = engine.submit_text(_prompts(tiny_pipeline, 1)[0], config)
        queued = engine.submit_text(LONG_PROMPT, config)
        engine.step()
        assert engine.request_status(queued) is RequestStatus.QUEUED
        assert engine.cancel(queued)
        assert engine.request_status(queued) is RequestStatus.CANCELLED
        assert engine.scheduler.num_waiting == 0
        result = engine.run()[queued]
        assert result.cancelled and result.token_ids == []
        # Regression: a request cancelled before admission never started, so
        # its wall time is 0.0 — not finished_at minus an unstamped 0.0
        # started_at (which froze the absolute perf_counter value).
        assert result.wall_time_seconds == 0.0
        assert engine.result(first).tokens_generated > 0

    def test_cancel_prefilling_releases_budget_and_prefix_pin_same_step(self, tiny_pipeline):
        """Regression (satellite fix): a PREFILLING cancel must free its
        ``tokens_in_flight`` footprint and drop the private row holding the
        spliced prefix-cache K/V immediately — not wait for retirement."""
        cache = PrefixCache(max_tokens=4096)
        engine = _engine(
            tiny_pipeline, "ours", DecodingStrategy.OURS,
            prefix_cache=cache,
            max_active_requests=1, max_prefill_tokens_per_step=2,
        )
        config = GenerationConfig.greedy_config(6)
        # Seed the prefix cache so the victim's admission splices a segment.
        seed = engine.submit_text(LONG_PROMPT, config)
        engine.run()
        assert engine.result(seed).tokens_generated >= 0

        # Shares the retained preamble but has a long unshared suffix, so it
        # stays PREFILLING for many 2-token chunks after the splice.
        victim = engine.submit_text(
            LONG_PROMPT + " always @(posedge clk) begin data_out <= data_in; end endmodule",
            config,
        )
        engine.step()  # admits; 2-token chunks keep it PREFILLING
        state = engine._states[victim]
        assert state.status is RequestStatus.PREFILLING
        assert state.tokens_reused > 0, "prefix splice did not happen"
        assert state.row_cache is not None
        assert engine.scheduler.tokens_in_flight > 0

        waiting = engine.submit_text(_prompts(tiny_pipeline, 1)[0], config)
        assert engine.cancel(victim)
        # Same step: footprint freed, private row (and its spliced prefix
        # copy) dropped, prefill queue emptied.
        assert engine.scheduler.tokens_in_flight == 0
        assert state.row_cache is None
        assert engine.num_prefilling == 0
        assert state.status is RequestStatus.CANCELLED
        # The freed budget admits the queued request on the very next step.
        engine.step()
        assert engine.request_status(waiting) in (RequestStatus.PREFILLING, RequestStatus.RUNNING)
        results = engine.run()
        assert results[victim].cancelled
        assert not results[waiting].cancelled

    def test_cancel_running_keeps_prefix_of_sequential(self, tiny_pipeline):
        prompts = _prompts(tiny_pipeline, 2)
        config = GenerationConfig.greedy_config(24)
        decoder = tiny_pipeline.decoder_for("ours")
        expected = decoder.generate_from_text(prompts[0], config)

        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=2)
        victim = engine.submit_text(prompts[0], config)
        survivor = engine.submit_text(prompts[1], config)
        for _ in range(3):
            engine.step()
        assert engine.request_status(victim) is RequestStatus.RUNNING
        rows_before = engine._cache.batch
        assert engine.cancel(victim)
        # The shared-cache row is reclaimed in the same step, not at retirement.
        assert engine._cache.batch == rows_before - 1
        assert engine.num_active == 1
        results = engine.run()
        partial = results[victim]
        assert partial.cancelled
        assert 0 < partial.tokens_generated < expected.tokens_generated or partial.token_ids == expected.token_ids
        assert partial.token_ids == expected.token_ids[: len(partial.token_ids)]
        # The surviving request is unaffected by its neighbour's cancellation.
        assert results[survivor].token_ids == decoder.generate_from_text(prompts[1], config).token_ids

    def test_cancel_finished_is_noop_and_double_cancel(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)
        config = GenerationConfig.greedy_config(4)
        done = engine.submit_text("module m", config)
        engine.run()
        assert engine.cancel(done) is False  # already finished: no-op
        assert not engine.result(done).cancelled

        victim = engine.submit_text("module n", GenerationConfig.greedy_config(64))
        engine.step()
        assert engine.cancel(victim) is True
        assert engine.cancel(victim) is False  # double-cancel: no-op
        assert engine.result(victim).cancelled

    def test_cancel_unknown_id_raises(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)
        with pytest.raises(KeyError):
            engine.cancel("nope")

    def test_forget_releases_settled_state(self, tiny_pipeline):
        """Long-lived servers can drop settled bookkeeping via engine.forget."""
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)
        config = GenerationConfig.greedy_config(3)
        rid = engine.submit_text("module m", config)
        with pytest.raises(ValueError, match="in flight"):
            engine.forget(rid)  # still queued
        engine.run()
        result = engine.forget(rid)
        assert result.tokens_generated > 0
        with pytest.raises(KeyError):
            engine.result(rid)
        with pytest.raises(KeyError):
            engine.stream_metrics(rid)
        # The id is unknown again; auto-ids may legitimately reuse it.
        rid2 = engine.submit_text("module m", config, request_id=rid)
        engine.run()
        assert engine.result(rid2).tokens_generated > 0

    def test_forget_prunes_deadline_watch_list(self, tiny_pipeline):
        """Deadline-carrying requests leave the watch list on forget, not
        only at the next step (an idle server never steps)."""
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)
        rid = engine.submit_text("module m", GenerationConfig.greedy_config(3), deadline=60.0)
        assert len(engine._deadlined) == 1
        engine.run()
        engine.forget(rid)
        assert engine._deadlined == []

    def test_broken_commit_listener_does_not_abort_the_step(self, tiny_pipeline):
        """Observation-only is enforced: a raising listener is dropped and
        the batch (including other requests) completes normally."""
        prompts = _prompts(tiny_pipeline, 2)
        config = GenerationConfig.greedy_config(8)
        decoder = tiny_pipeline.decoder_for("ours")
        expected = [decoder.generate_from_text(p, config) for p in prompts]

        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=2)
        ids = [engine.submit_text(p, config) for p in prompts]
        calls = []

        def broken(burst):
            calls.append(burst)
            raise RuntimeError("observer exploded")

        engine.attach_listeners(ids[0], on_commit=broken)
        results = engine.run()
        assert len(calls) == 1  # dropped after its first failure
        for rid, exp in zip(ids, expected):
            assert results[rid].token_ids == exp.token_ids

    def test_deadline_expires_queued_request(self, tiny_pipeline):
        """A deadline fires even while the request is still waiting in queue."""
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=1)
        blocker = engine.submit_text(_prompts(tiny_pipeline, 1)[0], GenerationConfig.greedy_config(48))
        doomed = engine.submit_text(LONG_PROMPT, GenerationConfig.greedy_config(8), deadline=1e-6)
        results = engine.run()
        assert results[doomed].cancelled and results[doomed].token_ids == []
        assert engine._states[doomed].timed_out
        assert not results[blocker].cancelled

    def test_submit_rejects_non_positive_deadline(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)
        with pytest.raises(ValueError, match="deadline"):
            engine.submit([1, 2], deadline=0.0)


class TestAsyncCancellation:
    """Handle-level cancellation/timeout semantics of the async front-end."""

    def test_own_cancel_ends_stream_quietly_result_raises(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)

        async def run():
            async with AsyncServingEngine(engine) as server:
                handle = await server.submit_text(
                    _prompts(tiny_pipeline, 1)[0], GenerationConfig.greedy_config(500)
                )
                collected = []
                cancelled = False
                async for burst in handle.stream():
                    collected.extend(burst)
                    # Bursts committed before the cancel landed may still
                    # arrive afterwards; only the first cancel returns True.
                    if len(collected) >= 4 and not cancelled:
                        assert handle.cancel()
                        cancelled = True
                with pytest.raises(RequestCancelled) as info:
                    await handle.result()
                return collected, info.value

        collected, error = asyncio.run(run())
        assert error.partial.cancelled
        # The stream delivered every committed burst, including any that
        # landed in the same step the cancel raced with.
        assert collected == error.partial.token_ids[: len(collected)]
        assert error.partial.tokens_generated >= len(collected)

    def test_foreign_cancel_raises_in_stream(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)

        async def run():
            async with AsyncServingEngine(engine) as server:
                handle = await server.submit_text(
                    _prompts(tiny_pipeline, 1)[0], GenerationConfig.greedy_config(500)
                )

                async def chop():
                    # The cancel comes from outside the handle (an operator
                    # or admission-control path), so the stream must raise.
                    await asyncio.sleep(0.02)
                    with server._lock:
                        server.engine.cancel(handle.request_id)

                async def consume():
                    with pytest.raises(RequestCancelled):
                        async for _ in handle.stream():
                            pass

                await asyncio.gather(chop(), consume())

        asyncio.run(run())

    def test_deadline_raises_deadline_exceeded(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)

        async def run():
            async with AsyncServingEngine(engine) as server:
                handle = await server.submit_text(
                    _prompts(tiny_pipeline, 1)[0],
                    GenerationConfig.greedy_config(5000),
                    deadline=0.03,
                )
                with pytest.raises(RequestDeadlineExceeded) as info:
                    await handle.result()
                return info.value

        error = asyncio.run(run())
        assert isinstance(error, RequestCancelled)  # subclass: one except catches both
        assert error.partial.cancelled

    def test_cancel_after_finish_returns_false(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)

        async def run():
            async with AsyncServingEngine(engine) as server:
                handle = await server.submit_text("module m", GenerationConfig.greedy_config(3))
                result = await handle.result()
                assert handle.cancel() is False
                assert (await handle.result()).token_ids == result.token_ids

        asyncio.run(run())

    def test_step_crash_fails_handles_instead_of_hanging(self, tiny_pipeline):
        """An exception inside engine.step() must propagate to consumers —
        a silently dead step thread would strand result()/stream() forever."""
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)

        def bad_step():
            raise RuntimeError("boom: forward exploded")

        engine.step = bad_step

        async def run():
            server = AsyncServingEngine(engine)
            server.start()
            handle = await server.submit_text("module m", GenerationConfig.greedy_config(4))
            with pytest.raises(RuntimeError, match="boom"):
                await handle.result()
            with pytest.raises(RuntimeError, match="boom"):
                async for _ in handle.stream():
                    pass
            assert server._handles == []  # failed handles are not retained
            # A crashed server refuses new work instead of queueing it forever.
            with pytest.raises(RuntimeError, match="crashed"):
                await server.submit_text("module n", GenerationConfig.greedy_config(4))
            with pytest.raises(RuntimeError, match="crashed"):
                server.start()
            await server.close()

        asyncio.run(run())

    def test_submit_racing_crash_fails_handle(self, tiny_pipeline):
        """A crash landing between submission and handle registration must
        still fail the handle (the crash fan-out could not see it yet)."""
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)

        async def run():
            server = AsyncServingEngine(engine)  # never started: no step thread
            real_submit = engine.submit

            def crash_during_submit(*args, **kwargs):
                rid = real_submit(*args, **kwargs)
                server._crashed = RuntimeError("boom mid-submit")
                return rid

            engine.submit = crash_during_submit
            handle = await server.submit_text("module m", GenerationConfig.greedy_config(4))
            with pytest.raises(RuntimeError, match="boom mid-submit"):
                await handle.result()
            # ... and once _crashed is visible at entry, submit refuses outright.
            with pytest.raises(RuntimeError, match="crashed"):
                await server.submit_text("module n", GenerationConfig.greedy_config(4))

        asyncio.run(run())

    def test_cancel_async_matches_sync_cancel(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)

        async def run():
            async with AsyncServingEngine(engine) as server:
                handle = await server.submit_text(
                    _prompts(tiny_pipeline, 1)[0], GenerationConfig.greedy_config(500)
                )
                await asyncio.sleep(0.02)
                assert await handle.cancel_async() is True
                assert await handle.cancel_async() is False  # double-cancel no-op
                # Own cancel: the stream ends quietly, result raises.
                async for _ in handle.stream():
                    pass
                with pytest.raises(RequestCancelled):
                    await handle.result()

        asyncio.run(run())

    def test_settled_handles_are_not_retained(self, tiny_pipeline):
        """A long-lived server forgets handles as they settle (no leak)."""
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)

        async def run():
            async with AsyncServingEngine(engine) as server:
                for index in range(3):
                    handle = await server.submit_text("module m", GenerationConfig.greedy_config(2))
                    await handle.result()
                    assert handle not in server._handles
                assert server._handles == []

        asyncio.run(run())

    def test_close_cancels_pending(self, tiny_pipeline):
        """Closing the server unblocks consumers instead of hanging them."""
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=1)

        async def run():
            server = AsyncServingEngine(engine)
            server.start()
            blocker = await server.submit_text(
                _prompts(tiny_pipeline, 1)[0], GenerationConfig.greedy_config(2000)
            )
            await asyncio.sleep(0.02)
            await server.close()
            with pytest.raises(RequestCancelled):
                await blocker.result()

        asyncio.run(run())


class TestSyncLifecycle:
    """Explicit shutdown semantics: join the thread, settle handles — never
    rely on daemon-thread teardown to "clean up"."""

    def test_sync_context_manager_joins_thread(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)
        server = AsyncServingEngine(engine)
        with server:
            assert server.running
            thread = server._thread
        assert not server.running
        assert thread is not None and not thread.is_alive()

    def test_shutdown_fails_pending_handles_after_loop_exit(self, tiny_pipeline):
        """A handle whose event loop already closed is settled in place by
        the sync shutdown instead of being stranded mid-stream."""
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS, max_active_requests=1)
        server = AsyncServingEngine(engine)

        async def submit():
            server.start()
            return await server.submit_text(
                _prompts(tiny_pipeline, 1)[0], GenerationConfig.greedy_config(2000)
            )

        handle = asyncio.run(submit())  # loop is closed when this returns
        assert not handle.done
        server.shutdown()
        assert not server.running
        assert handle.done
        assert isinstance(handle._error, RequestCancelled)
        assert server._handles == []  # settled handles are pruned, not leaked

    def test_shutdown_is_idempotent(self, tiny_pipeline):
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP)
        server = AsyncServingEngine(engine)
        with server:
            pass
        server.shutdown()  # again, after the with-block already shut down
        server.shutdown()
        assert not server.running

    def test_shutdown_without_cancel_leaves_engine_resumable(self, tiny_pipeline):
        """``cancel_pending=False`` hands the in-flight work back to the
        caller: the engine can be drained synchronously afterwards."""
        engine = _engine(tiny_pipeline, "ours", DecodingStrategy.OURS)
        server = AsyncServingEngine(engine)

        async def submit():
            server.start()
            return await server.submit_text(
                _prompts(tiny_pipeline, 1)[0], GenerationConfig.greedy_config(12)
            )

        handle = asyncio.run(submit())
        server.shutdown(cancel_pending=False)
        results = engine.run()
        assert results[handle.request_id].token_ids


class TestPriorityScheduling:
    """Priority classes admit latency-sensitive work first; aging stops starvation."""

    def _engine(self, tiny_pipeline, aging_rounds=8, **kwargs):
        return _engine(
            tiny_pipeline, "ntp", DecodingStrategy.NTP,
            priorities=PriorityConfig(aging_rounds=aging_rounds),
            **kwargs,
        )

    def test_high_priority_overtakes_queue(self, tiny_pipeline):
        engine = self._engine(tiny_pipeline, max_active_requests=1)
        config = GenerationConfig.greedy_config(4)
        blocker = engine.submit_text("module a", config, priority=0)
        engine.step()  # blocker admitted and running
        bulk = engine.submit_text("module b", config, priority=0)
        urgent = engine.submit_text("module c", config, priority=5)
        finished_order = []
        while engine.has_work:
            engine.step()
            for rid in (blocker, bulk, urgent):
                if engine.request_status(rid) is RequestStatus.FINISHED and rid not in finished_order:
                    finished_order.append(rid)
        assert finished_order.index(urgent) < finished_order.index(bulk)

    def test_fcfs_within_priority_class(self, tiny_pipeline):
        engine = self._engine(tiny_pipeline, max_active_requests=1)
        config = GenerationConfig.greedy_config(2)
        ids = [engine.submit_text(f"module m{i}", config, priority=3) for i in range(4)]
        order = []
        while engine.has_work:
            engine.step()
            for rid in ids:
                if engine.request_status(rid) is RequestStatus.FINISHED and rid not in order:
                    order.append(rid)
        assert order == ids

    def test_aging_prevents_starvation(self, tiny_pipeline):
        """Low-priority work overtakes an endless stream of fresh high-priority
        arrivals once its aging bonus closes the class gap."""
        engine = self._engine(tiny_pipeline, aging_rounds=2, max_active_requests=1)
        config = GenerationConfig.greedy_config(1)
        low = engine.submit_text("module low", config, priority=0)
        hot = 0
        steps = 0
        while engine.request_status(low) is not RequestStatus.FINISHED:
            steps += 1
            assert steps < 200, "low-priority request starved despite aging"
            # Keep the high-priority queue non-empty forever.
            while engine.scheduler.num_waiting < 2:
                engine.submit_text(f"module hot{hot}", config, priority=3)
                hot += 1
            engine.step()
        # Drain what's left so the engine ends clean.
        while engine.has_work:
            engine.step()
        assert engine.result(low).tokens_generated >= 0

    def test_priorities_ignored_without_policy(self, tiny_pipeline):
        """Plain FCFS config: priority hints change nothing (seed behaviour)."""
        engine = _engine(tiny_pipeline, "ntp", DecodingStrategy.NTP, max_active_requests=1)
        config = GenerationConfig.greedy_config(2)
        first = engine.submit_text("module a", config, priority=0)
        second = engine.submit_text("module b", config, priority=9)
        order = []
        while engine.has_work:
            engine.step()
            for rid in (first, second):
                if engine.request_status(rid) is RequestStatus.FINISHED and rid not in order:
                    order.append(rid)
        assert order == [first, second]

    def test_priority_config_validation(self):
        with pytest.raises(ValueError, match="aging_rounds"):
            PriorityConfig(aging_rounds=0)
