"""Tests for the vocabulary and BPE tokenizer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tokenizer.bpe import BPETokenizer
from repro.tokenizer.vocab import Vocabulary
from repro.verilog.fragments import FRAG, insert_frag_markers


CORPUS = [
    "module data_register (input clk, input [3:0] data_in, output reg [3:0] data_out);",
    "always @(posedge clk) begin data_out <= data_in; end endmodule",
    "module counter (input clk, input rst, output reg [7:0] count);",
    "if (rst) count <= 0; else count <= count + 1;",
    "assign sum = a + b; assign carry = a & b;",
    "Write a Verilog module named counter that counts up by one.",
]


@pytest.fixture(scope="module")
def trained_tokenizer():
    tokenizer = BPETokenizer()
    tokenizer.train(CORPUS, vocab_size=300)
    return tokenizer


class TestVocabulary:
    def test_special_tokens_have_fixed_ids(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.bos_id == 2
        assert vocab.eos_id == 3
        assert vocab.frag_id == 4
        assert vocab.ignore_id == 5

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("module")
        second = vocab.add("module")
        assert first == second

    def test_unknown_token_maps_to_unk(self):
        vocab = Vocabulary()
        assert vocab.token_to_id("never_seen") == vocab.unk_id

    def test_id_round_trip(self):
        vocab = Vocabulary(["alpha", "beta"])
        assert vocab.id_to_token(vocab.token_to_id("beta")) == "beta"

    def test_out_of_range_id(self):
        vocab = Vocabulary()
        assert vocab.id_to_token(10_000) == vocab.special.unk

    def test_contains(self):
        vocab = Vocabulary(["x"])
        assert "x" in vocab
        assert "y" not in vocab

    def test_save_load_round_trip(self, tmp_path):
        vocab = Vocabulary(["module", "endmodule"])
        path = tmp_path / "vocab.json"
        vocab.save(path)
        loaded = Vocabulary.load(path)
        assert loaded.tokens() == vocab.tokens()
        assert loaded.frag_id == vocab.frag_id


class TestBPETraining:
    def test_vocab_size_respected(self, trained_tokenizer):
        assert trained_tokenizer.vocab_size <= 300

    def test_learns_merges(self, trained_tokenizer):
        assert len(trained_tokenizer.merges) > 0

    def test_frequent_words_become_single_tokens(self, trained_tokenizer):
        pieces = trained_tokenizer.encode_to_tokens("module")
        assert len(pieces) <= 3

    def test_min_frequency_limits_merges(self):
        tokenizer = BPETokenizer()
        tokenizer.train(["abcd efgh"], vocab_size=500, min_frequency=2)
        # Every pair occurs once, so no merges should be learned.
        assert tokenizer.merges == []


class TestEncodingDecoding:
    def test_encode_decode_round_trip_tokens(self, trained_tokenizer):
        text = "module counter (input clk);"
        decoded = trained_tokenizer.decode(trained_tokenizer.encode(text))
        assert decoded.split() == text.split()

    def test_frag_is_single_token(self, trained_tokenizer):
        ids = trained_tokenizer.encode(f"{FRAG}module{FRAG}")
        tokens = [trained_tokenizer.vocab.id_to_token(i) for i in ids]
        assert tokens.count(FRAG) == 2

    def test_frag_never_merges_with_code(self, trained_tokenizer):
        annotated = insert_frag_markers("module m(input a, output b); assign b = a; endmodule\n")
        ids = trained_tokenizer.encode(annotated)
        tokens = [trained_tokenizer.vocab.id_to_token(i) for i in ids]
        for token in tokens:
            assert token == FRAG or FRAG not in token

    def test_decode_strips_frag_when_asked(self, trained_tokenizer):
        ids = trained_tokenizer.encode(f"{FRAG}module{FRAG} m;")
        code = trained_tokenizer.decode(ids, keep_frag=False)
        assert FRAG not in code
        assert "module" in code

    def test_bos_eos(self, trained_tokenizer):
        ids = trained_tokenizer.encode("module", add_bos=True, add_eos=True)
        assert ids[0] == trained_tokenizer.vocab.bos_id
        assert ids[-1] == trained_tokenizer.vocab.eos_id

    def test_pad_and_ignore_dropped_in_decode(self, trained_tokenizer):
        vocab = trained_tokenizer.vocab
        ids = [vocab.pad_id, vocab.ignore_id] + trained_tokenizer.encode("wire x;")
        assert trained_tokenizer.decode(ids).strip().startswith("wire")

    def test_unknown_characters_become_unk(self, trained_tokenizer):
        ids = trained_tokenizer.encode("ééé")
        assert all(isinstance(i, int) for i in ids)

    def test_newlines_preserved(self, trained_tokenizer):
        text = "module m;\nwire x;\nendmodule"
        decoded = trained_tokenizer.decode(trained_tokenizer.encode(text))
        assert decoded.count("\n") == text.count("\n")

    def test_empty_text(self, trained_tokenizer):
        assert trained_tokenizer.encode("") == []
        assert trained_tokenizer.decode([]) == ""

    def test_save_load_round_trip(self, trained_tokenizer, tmp_path):
        path = tmp_path / "tok.json"
        trained_tokenizer.save(path)
        loaded = BPETokenizer.load(path)
        text = "always @(posedge clk) begin count <= count + 1; end"
        assert loaded.encode(text) == trained_tokenizer.encode(text)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.sampled_from(
            ["module", "endmodule", "input", "output", "wire", "reg", "clk", "data_in", "count", "assign",
             "=", "<=", ";", "(", ")", "[3:0]", "+", "1'b1", "posedge", "begin", "end"]
        ),
        min_size=1,
        max_size=30,
    )
)
def test_round_trip_preserves_token_stream(words):
    """Property: decoding re-produces the same whitespace-separated words."""
    tokenizer = BPETokenizer()
    tokenizer.train(CORPUS + [" ".join(words)], vocab_size=350)
    text = " ".join(words)
    decoded = tokenizer.decode(tokenizer.encode(text))
    assert decoded.split() == text.split()


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 1000))
def test_frag_annotation_round_trip_through_tokenizer(seed):
    """Property: [FRAG]-annotated corpus code keeps its marker count through encode/decode."""
    from repro.data.corpus import CorpusConfig, SyntheticVerilogCorpus

    corpus = SyntheticVerilogCorpus(CorpusConfig(seed=3))
    item = corpus.generate_item("register", seed)
    annotated = insert_frag_markers(item.code)
    tokenizer = BPETokenizer()
    tokenizer.train([annotated, item.code], vocab_size=400)
    ids = tokenizer.encode(annotated)
    decoded = tokenizer.decode(ids, keep_frag=True)
    assert decoded.count(FRAG) == annotated.count(FRAG)
