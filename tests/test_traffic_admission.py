"""Admission controller tests: buckets, hysteresis, and fuzzed invariants.

The deterministic tests pin each mechanism (token-bucket arithmetic, breach
trip/recover thresholds, the decision policy); the property suite then
fuzzes random interleavings of TTFT observations, admission consults and
clock advances and asserts the controller's four contractual invariants:

1. interactive traffic is **never** shed;
2. bulk traffic is shed **only** while the detector reports a breach;
3. no starvation — after the breach clears and buckets refill, a bulk
   request is eventually admitted;
4. token-bucket levels are never negative.
"""

from __future__ import annotations

import pytest

from proptest import Cases, for_all, num_cases

from repro.traffic import (
    AdmissionController,
    AdmissionDecision,
    BreachDetector,
    SLOConfig,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        bucket = TokenBucket(rate=10.0, burst=20.0)
        assert bucket.level(0.0) == 20.0
        assert bucket.try_spend(15.0, 0.0)
        assert bucket.level(0.0) == 5.0

    def test_failed_spend_leaves_level_untouched(self):
        bucket = TokenBucket(rate=10.0, burst=20.0)
        assert not bucket.try_spend(25.0, 0.0)
        assert bucket.level(0.0) == 20.0

    def test_refills_at_rate_and_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=20.0)
        assert bucket.try_spend(20.0, 0.0)
        assert bucket.level(1.0) == pytest.approx(10.0)
        assert bucket.level(100.0) == pytest.approx(20.0)

    def test_clock_going_backwards_does_not_drain(self):
        bucket = TokenBucket(rate=10.0, burst=20.0)
        bucket.level(5.0)
        assert bucket.level(4.0) == pytest.approx(20.0)

    @pytest.mark.parametrize("rate,burst", [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0)])
    def test_bad_construction_rejected(self, rate, burst):
        with pytest.raises(ValueError):
            TokenBucket(rate=rate, burst=burst)

    def test_negative_spend_rejected(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(ValueError):
            bucket.try_spend(-1.0, 0.0)


class TestBreachDetector:
    def _config(self, **overrides):
        base = dict(target_p95_ttft=0.1, window_seconds=10.0, recover_under=0.5, min_samples=3)
        base.update(overrides)
        return SLOConfig(**base)

    def test_no_breach_below_min_samples(self):
        detector = BreachDetector(self._config())
        detector.observe(5.0, 0.0)
        detector.observe(5.0, 0.1)
        assert not detector.breached

    def test_trips_on_high_p95(self):
        detector = BreachDetector(self._config())
        for i in range(3):
            detector.observe(0.5, i * 0.1)
        assert detector.breached
        assert detector.breach_count == 1

    def test_hysteresis_holds_between_thresholds(self):
        # p95 between recover_under*target and target: a tripped detector
        # stays tripped; an untripped one stays untripped.
        detector = BreachDetector(self._config())
        for i in range(3):
            detector.observe(0.5, i * 0.1)
        assert detector.breached
        for i in range(40):  # flood the window with 0.08s samples (0.05..0.1 band)
            detector.observe(0.08, 1.0 + i * 0.01)
        assert detector.breached  # held by hysteresis

        fresh = BreachDetector(self._config())
        for i in range(10):
            fresh.observe(0.08, i * 0.1)
        assert not fresh.breached

    def test_recovers_below_recover_threshold(self):
        detector = BreachDetector(self._config())
        for i in range(3):
            detector.observe(0.5, i * 0.1)
        assert detector.breached
        for i in range(60):
            detector.observe(0.01, 1.0 + i * 0.01)
        detector.update(12.0)  # old high samples have also aged out by now
        assert not detector.breached

    def test_quiet_period_clears_breach(self):
        detector = BreachDetector(self._config())
        for i in range(3):
            detector.observe(0.5, i * 0.1)
        assert detector.breached
        # No new samples; the window drains past window_seconds.
        assert not detector.update(100.0)

    def test_window_expiry_drops_old_samples(self):
        detector = BreachDetector(self._config(window_seconds=1.0))
        detector.observe(0.5, 0.0)
        assert detector.window_p95(0.5) > 0.0
        assert detector.window_p95(2.0) == 0.0

    @pytest.mark.parametrize(
        "overrides",
        [
            {"target_p95_ttft": 0.0},
            {"window_seconds": -1.0},
            {"recover_under": 0.0},
            {"recover_under": 1.5},
            {"min_samples": 0},
        ],
    )
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ValueError):
            BreachDetector(self._config(**overrides))


class TestAdmissionController:
    def _controller(self, **overrides) -> AdmissionController:
        base = dict(
            target_p95_ttft=0.1,
            window_seconds=10.0,
            recover_under=0.5,
            min_samples=3,
            tenant_rate=100.0,
            tenant_burst=50.0,
        )
        base.update(overrides)
        return AdmissionController(SLOConfig(**base))

    def _trip(self, controller: AdmissionController, now: float = 0.0) -> None:
        for i in range(3):
            controller.observe_ttft(1.0, now + i * 0.01)
        assert controller.detector.breached

    def test_admits_by_default(self):
        controller = self._controller()
        assert controller.decide("t0", "bulk", 10, 0.0) is AdmissionDecision.ADMIT
        assert controller.decide("t0", "interactive", 10, 0.0) is AdmissionDecision.ADMIT

    def test_bulk_shed_during_breach_interactive_never(self):
        controller = self._controller()
        self._trip(controller)
        assert controller.decide("t0", "bulk", 10, 0.1) is AdmissionDecision.SHED
        decision = controller.decide("t0", "interactive", 10, 0.1)
        assert decision in (AdmissionDecision.ADMIT, AdmissionDecision.DEFER)
        assert decision is AdmissionDecision.ADMIT  # bucket is full here

    def test_empty_bucket_defers_instead_of_shedding(self):
        controller = self._controller(tenant_rate=1.0, tenant_burst=10.0)
        assert controller.decide("t0", "interactive", 10, 0.0) is AdmissionDecision.ADMIT
        assert controller.decide("t0", "interactive", 10, 0.0) is AdmissionDecision.DEFER
        # After refill time the same request admits.
        assert controller.decide("t0", "interactive", 10, 10.0) is AdmissionDecision.ADMIT

    def test_oversized_request_charge_clamped_to_burst(self):
        controller = self._controller(tenant_rate=100.0, tenant_burst=20.0)
        # Budget exceeds the bucket capacity: charged `burst`, not starved.
        assert controller.decide("t0", "bulk", 500, 0.0) is AdmissionDecision.ADMIT
        assert controller.decide("t0", "bulk", 500, 0.0) is AdmissionDecision.DEFER
        assert controller.decide("t0", "bulk", 500, 1.0) is AdmissionDecision.ADMIT

    def test_buckets_are_per_tenant(self):
        controller = self._controller(tenant_rate=1.0, tenant_burst=10.0)
        assert controller.decide("t0", "bulk", 10, 0.0) is AdmissionDecision.ADMIT
        assert controller.decide("t0", "bulk", 10, 0.0) is AdmissionDecision.DEFER
        assert controller.decide("t1", "bulk", 10, 0.0) is AdmissionDecision.ADMIT

    def test_no_rate_limit_when_tenant_rate_none(self):
        controller = self._controller(tenant_rate=None)
        for _ in range(50):
            assert controller.decide("t0", "bulk", 1000, 0.0) is AdmissionDecision.ADMIT

    def test_recovery_readmits_bulk(self):
        controller = self._controller()
        self._trip(controller)
        assert controller.decide("t0", "bulk", 1, 0.1) is AdmissionDecision.SHED
        # Quiet period: window drains, breach clears, bulk flows again.
        assert controller.decide("t0", "bulk", 1, 100.0) is AdmissionDecision.ADMIT

    def test_counters_and_snapshot(self):
        controller = self._controller(tenant_rate=1.0, tenant_burst=10.0)
        controller.decide("t0", "bulk", 10, 0.0)      # admit
        controller.decide("t0", "bulk", 10, 0.0)      # defer
        self._trip(controller, now=0.1)
        controller.decide("t0", "bulk", 10, 0.2)      # shed
        snapshot = controller.snapshot(0.2)
        assert snapshot["breached"] is True
        assert snapshot["breach_count"] == 1
        assert snapshot["tenants"]["t0"] == {"admitted": 1, "deferred": 1, "shed": 1}
        assert snapshot["window_p95_ttft"] > snapshot["target_p95_ttft"]
        assert "t0" in snapshot["bucket_levels"]


class TestAdmissionProperties:
    """Fuzzed interleavings of observations, consults and clock advances."""

    def test_invariants_under_random_traffic(self):
        def property_fn(cases: Cases) -> None:
            target = cases.choice([0.05, 0.1, 0.2])
            rate_limited = cases.boolean()
            controller = AdmissionController(
                SLOConfig(
                    target_p95_ttft=target,
                    window_seconds=cases.choice([1.0, 5.0]),
                    recover_under=cases.choice([0.5, 0.8]),
                    min_samples=cases.integer(1, 4),
                    tenant_rate=cases.choice([20.0, 100.0]) if rate_limited else None,
                    tenant_burst=cases.choice([16.0, 64.0]),
                )
            )
            now = 0.0
            tenants = [f"t{i}" for i in range(cases.integer(1, 3))]
            for _ in range(cases.integer(20, 120)):
                now += cases.choice([0.0, 0.001, 0.01, 0.1, 1.0])
                action = cases.choice(["observe", "decide", "idle"])
                if action == "observe":
                    # TTFT samples between well-under and well-over target.
                    controller.observe_ttft(target * cases.choice([0.1, 0.5, 2.0, 10.0]), now)
                elif action == "decide":
                    tenant = cases.choice(tenants)
                    traffic_class = cases.choice(["interactive", "bulk"])
                    breached_before = controller.detector.update(now)
                    decision = controller.decide(
                        tenant, traffic_class, cases.integer(1, 128), now
                    )
                    # Invariant 1: interactive is never shed.
                    if traffic_class == "interactive":
                        assert decision is not AdmissionDecision.SHED
                    # Invariant 2: shed only inside a breach window.
                    if decision is AdmissionDecision.SHED:
                        assert breached_before
                    # Invariant 4: bucket accounting never negative.
                    for bucket in controller.buckets.values():
                        assert bucket.level(now) >= 0.0
                # Invariant 4 also holds on idle ticks.
                for bucket in controller.buckets.values():
                    assert bucket.level(now) >= -0.0
            # Invariant 3 (no starvation after recovery): far in the
            # future the window has drained and every bucket refilled, so
            # bulk traffic must flow for every tenant.
            later = now + max(controller.config.window_seconds, 10.0) + 10.0
            for tenant in tenants:
                assert (
                    controller.decide(tenant, "bulk", 8, later)
                    is AdmissionDecision.ADMIT
                )

        for_all(num_cases(quick=25, full=400), property_fn, seed=10)

    def test_bucket_never_negative_under_random_spends(self):
        def property_fn(cases: Cases) -> None:
            bucket = TokenBucket(
                rate=cases.choice([0.5, 5.0, 50.0]),
                burst=cases.choice([1.0, 16.0, 256.0]),
            )
            now = 0.0
            for _ in range(cases.integer(10, 200)):
                now += cases.choice([0.0, 0.001, 0.05, 2.0])
                spend = cases.choice([0.0, 0.5, 1.0, 17.0, 300.0])
                bucket.try_spend(spend, now)
                level = bucket.level(now)
                assert 0.0 <= level <= bucket.burst + 1e-9

        for_all(num_cases(quick=30, full=500), property_fn, seed=11)
