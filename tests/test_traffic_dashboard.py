"""Ops dashboard tests: pure rendering, snapshots, live wiring.

The dashboard's testability contract is that :func:`render_frame` is a pure
function of a :class:`DashboardSnapshot` — no TTY, no timers, no global
state.  These tests render frames headless, assert byte-stability and the
color toggle, round-trip snapshots through JSON, and build snapshots from a
real engine's metric surfaces.
"""

from __future__ import annotations

import json

import pytest

from repro.models.generation import GenerationConfig
from repro.traffic import (
    DashboardSnapshot,
    OpsDashboard,
    render_frame,
    snapshot_from_engine,
)


def _snapshot(**overrides) -> DashboardSnapshot:
    base = dict(
        timestamp=12.5,
        active_requests=3,
        prefilling_requests=1,
        finished_requests=40,
        requests_per_second=8.25,
        tokens_per_second=410.0,
        ttft_p50=0.031,
        ttft_p95=0.104,
        itl_p50=0.008,
        itl_p95=0.02,
        kv_occupancy=0.62,
        kv_blocks_in_use=181,
        kv_blocks_total=292,
        prefix_hit_rate=0.45,
        prefill_savings=0.3,
    )
    base.update(overrides)
    return DashboardSnapshot(**base)


class TestRenderFrame:
    def test_pure_and_byte_stable(self):
        a = render_frame(_snapshot())
        b = render_frame(_snapshot())
        assert a == b
        assert render_frame(_snapshot(active_requests=4)) != a

    def test_plain_by_default_no_ansi(self):
        frame = render_frame(_snapshot())
        assert "\x1b[" not in frame
        assert frame.isascii()

    def test_color_opt_in(self):
        frame = render_frame(_snapshot(), color=True)
        assert "\x1b[1m" in frame  # bold header
        assert frame.endswith("\x1b[0m") or "\x1b[0m" in frame

    def test_core_rows_present(self):
        frame = render_frame(_snapshot())
        assert "8.25 req/s" in frame
        assert "410.0 tok/s" in frame
        assert "p95    104.0 ms" in frame  # ttft row in milliseconds
        assert "(181/292 blocks)" in frame
        assert "hit rate  45.0%" in frame

    def test_occupancy_bar_clamped(self):
        over = render_frame(_snapshot(kv_occupancy=3.5))
        under = render_frame(_snapshot(kv_occupancy=-1.0))
        assert "#-" not in over.splitlines()[7]  # fully filled bar
        assert "-#" not in under.splitlines()[7]  # fully empty bar

    def test_slo_row_only_with_target(self):
        assert " slo " not in render_frame(_snapshot())
        frame = render_frame(
            _snapshot(slo_target_p95_ttft=0.05, slo_window_p95_ttft=0.01, slo_breached=False)
        )
        assert "[ok]" in frame
        breach = render_frame(
            _snapshot(slo_target_p95_ttft=0.05, slo_window_p95_ttft=0.2, slo_breached=True)
        )
        assert "[BREACH]" in breach

    def test_tenant_table_sorted_and_complete(self):
        frame = render_frame(
            _snapshot(
                tenants={
                    "tenant-1": {"admitted": 5, "deferred": 1, "shed": 0},
                    "tenant-0": {"admitted": 9, "deferred": 0, "shed": 2},
                }
            )
        )
        lines = frame.splitlines()
        rows = [line for line in lines if line.lstrip().startswith("tenant-")]
        assert len(rows) == 2
        assert rows[0].lstrip().startswith("tenant-0")
        assert "2" in rows[0]  # shed count rendered

    def test_width_floor(self):
        frame = render_frame(_snapshot(), width=10)
        assert all(len(line) <= 80 for line in frame.splitlines())
        assert frame.splitlines()[0] == "=" * 40


class TestSnapshotRoundTrip:
    def test_json_round_trip_renders_identically(self):
        snapshot = _snapshot(
            slo_target_p95_ttft=0.05,
            slo_window_p95_ttft=0.02,
            tenants={"tenant-0": {"admitted": 3, "deferred": 0, "shed": 1}},
        )
        payload = json.loads(json.dumps(snapshot.to_dict()))
        again = DashboardSnapshot.from_dict(payload)
        assert again == snapshot
        assert render_frame(again) == render_frame(snapshot)


class TestSnapshotFromEngine:
    def test_engine_surfaces_feed_snapshot(self, tiny_pipeline):
        engine = tiny_pipeline.engine_for("ours")
        rids = []
        for index, example in enumerate(tiny_pipeline.examples[:3]):
            rid = engine.submit_text(
                example.prompt_text(),
                config=GenerationConfig.greedy_config(8),
                request_id=f"d{index}",
            )
            rids.append(rid)
        engine.run()
        snapshot = snapshot_from_engine(engine, finished_ids=rids, window_seconds=2.0)
        assert snapshot.finished_requests == 3
        assert snapshot.requests_per_second == pytest.approx(1.5)
        assert snapshot.tokens_per_second > 0
        assert snapshot.ttft_p95 >= snapshot.ttft_p50 >= 0.0
        assert snapshot.kv_blocks_total > 0
        assert 0.0 <= snapshot.kv_occupancy <= 1.0
        # The snapshot renders without touching the engine again.
        frame = render_frame(snapshot)
        assert "finished     3" in frame

    def test_zero_window_means_zero_rates(self, tiny_pipeline):
        engine = tiny_pipeline.engine_for("ours")
        snapshot = snapshot_from_engine(engine, finished_ids=[], window_seconds=0.0)
        assert snapshot.requests_per_second == 0.0
        assert snapshot.tokens_per_second == 0.0


class TestOpsDashboard:
    def test_requires_exactly_one_source(self, tiny_pipeline):
        engine = tiny_pipeline.engine_for("ours")
        with pytest.raises(ValueError, match="exactly one"):
            OpsDashboard()
        with pytest.raises(ValueError, match="exactly one"):
            OpsDashboard(engine=engine, router=object())

    def test_live_wrapper_tracks_finished_requests(self, tiny_pipeline):
        engine = tiny_pipeline.engine_for("ours")
        dashboard = OpsDashboard(engine=engine)
        rid = engine.submit_text(
            tiny_pipeline.examples[0].prompt_text(),
            config=GenerationConfig.greedy_config(6),
        )
        engine.run()
        dashboard.note_finished(rid)
        frame = dashboard.frame()
        assert "finished     1" in frame
        # Frames are pure renders of snapshots: re-rendering the same
        # snapshot (rather than re-snapshotting the live clock) is stable.
        snapshot = dashboard.snapshot()
        assert render_frame(snapshot) == render_frame(snapshot)
