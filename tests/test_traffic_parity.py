"""Stream-metrics parity: Router vs. in-process ServingEngine.

The ops dashboard and the replay report consume ``stream_metrics`` from
whichever front-end is serving; this suite pins the contract that makes
that interchangeable.  A single-worker router executes the same engine
core step-for-step, so for the same workload the two surfaces must report
the **same schema** and **equivalent values**: identical burst structure
(commit event count and per-event token counts, hence identical
inter-token series lengths) and the same completion semantics.  Wall-clock
timestamps differ between processes, so the time *values* are compared
only structurally (present, non-negative, consistent).
"""

from __future__ import annotations

from repro.models.generation import GenerationConfig
from repro.serving import Router, RouterConfig, ServingEngine


def _prompts(pipeline, count):
    prompts = [example.prompt_text() for example in pipeline.examples][:count]
    return [pipeline.tokenizer.encode(p, add_bos=True) for p in prompts]


def _engine_metrics(pipeline, prompts):
    engine = ServingEngine(pipeline.models["ours"], pipeline.tokenizer)
    for index, prompt in enumerate(prompts):
        engine.submit(prompt, config=GenerationConfig.greedy_config(12), request_id=f"r{index}")
    results = engine.run()
    return results, {f"r{i}": engine.stream_metrics(f"r{i}") for i in range(len(prompts))}


def _router_metrics(pipeline, prompts):
    def factory():
        return ServingEngine(pipeline.models["ours"], pipeline.tokenizer)

    router = Router(factory, config=RouterConfig(num_workers=1, start_method="fork"))
    with router:
        for index, prompt in enumerate(prompts):
            router.submit(prompt, config=GenerationConfig.greedy_config(12), request_id=f"r{index}")
        results = router.drain(timeout=300)
        metrics = {f"r{i}": router.stream_metrics(f"r{i}") for i in range(len(prompts))}
    return results, metrics


class TestStreamMetricsParity:
    def test_schema_and_equivalent_values(self, tiny_pipeline):
        prompts = _prompts(tiny_pipeline, 3)
        engine_results, engine_metrics = _engine_metrics(tiny_pipeline, prompts)
        router_results, router_metrics = _router_metrics(tiny_pipeline, prompts)

        for rid in engine_metrics:
            local, remote = engine_metrics[rid], router_metrics[rid]
            # Same schema.
            assert set(local) == set(remote) == {
                "ttft_seconds", "inter_token_seconds", "commit_events",
            }
            # Same tokens delivered (the single-worker identity guarantee).
            assert router_results[rid].token_ids == engine_results[rid].token_ids
            # Same burst structure: the router worker runs the same core
            # step-for-step, so commits land in the same per-step groups.
            local_bursts = [n for _, n in local["commit_events"]]
            remote_bursts = [n for _, n in remote["commit_events"]]
            assert remote_bursts == local_bursts
            assert sum(local_bursts) == len(engine_results[rid].token_ids)
            # Same derived series shape: one inter-token entry per token
            # after the first burst, on both surfaces.
            expected_itl = sum(local_bursts[1:])
            assert len(local["inter_token_seconds"]) == expected_itl
            assert len(remote["inter_token_seconds"]) == expected_itl
            # Timestamps are wall-clock and process-local: compare
            # structurally, not numerically.
            for metrics in (local, remote):
                assert metrics["ttft_seconds"] is not None
                assert metrics["ttft_seconds"] >= 0.0
                offsets = [t for t, _ in metrics["commit_events"]]
                assert offsets == sorted(offsets)
                assert all(gap >= 0.0 for gap in metrics["inter_token_seconds"])
