"""Trace replay tests: simulated-clock determinism and churn coverage.

The headline assertion is the harness's CI guarantee: generating the same
trace twice and replaying it on fresh engines with fresh simulated clocks
produces **identical** trace JSON, per-request token streams, statuses and
report metrics — virtual time makes the whole latency surface (TTFT,
inter-token, deadline expiry) part of the deterministic contract, not just
the tokens.  The churn tests exercise the cancellation and deadline paths
in virtual time, and one wall-clock test replays through the async
front-end to cover the non-deterministic regime's plumbing.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serving import PrefixCache, PriorityConfig, SchedulerConfig
from repro.serving.server import AsyncServingEngine
from repro.traffic import (
    AdmissionController,
    SimulatedClock,
    SLOConfig,
    StepCostModel,
    Trace,
    TraceConfig,
    TraceRequest,
    WallClock,
    generate_trace,
    replay_trace,
    replay_trace_async,
)


def _engine(pipeline, clock=None, max_active=4, prefix_cache=None):
    return pipeline.engine_for(
        "ours",
        scheduler_config=SchedulerConfig(
            max_active_requests=max_active, priorities=PriorityConfig()
        ),
        prefix_cache=prefix_cache,
        clock=clock,
    )


def _trace(**overrides) -> Trace:
    base = dict(
        num_requests=10,
        seed=3,
        requests_per_second=50.0,
        max_new_token_choices=(4, 8),
        prompt_sentence_choices=(1, 2),
    )
    base.update(overrides)
    return generate_trace(TraceConfig(**base))


def _manual_trace(requests) -> Trace:
    return Trace(config=TraceConfig(num_requests=len(requests)), requests=list(requests))


class TestSimulatedDeterminism:
    def test_same_seed_identical_replay(self, tiny_pipeline):
        config = TraceConfig(
            num_requests=12,
            seed=7,
            requests_per_second=40.0,
            arrival_process="bursty",
            deadline_fraction=0.2,
            cancel_fraction=0.15,
            max_new_token_choices=(4, 8),
            prompt_sentence_choices=(1, 2),
        )

        def run_once():
            trace = generate_trace(config)
            clock = SimulatedClock()
            engine = _engine(tiny_pipeline, clock=clock)
            report = replay_trace(engine, trace, clock=clock, cost_model=StepCostModel())
            return trace.to_json(), report.to_dict()

        trace_a, report_a = run_once()
        trace_b, report_b = run_once()
        assert trace_a == trace_b
        # Full-report equality: token streams, statuses, TTFT/latency
        # series, admission-free counters — everything, to the byte.
        assert report_a == report_b
        assert report_a["clock_mode"] == "simulated"
        assert report_a["num_requests"] == 12

    def test_report_schema_and_accounting(self, tiny_pipeline):
        trace = _trace()
        clock = SimulatedClock()
        engine = _engine(tiny_pipeline, clock=clock)
        report = replay_trace(engine, trace, clock=clock)
        payload = report.to_dict()
        assert payload["schema"] == "repro.traffic.replay.v1"
        assert payload["by_status"] == {"finished": 10}
        assert payload["total_tokens"] == sum(len(o["token_ids"]) for o in payload["outcomes"])
        assert payload["duration_seconds"] > 0
        assert payload["steps"] == report.steps > 0
        for cls in payload["classes"].values():
            assert set(cls["ttft"]) == {"count", "mean", "p50", "p95"}
        # Finished requests expose TTFT and latency in virtual seconds.
        for outcome in report.outcomes:
            assert outcome.ttft_seconds is not None
            assert outcome.latency_seconds >= outcome.ttft_seconds >= 0.0
            assert outcome.token_ids

    def test_token_streams_match_direct_engine_run(self, tiny_pipeline):
        # The replayer adds timing and admission, never token semantics:
        # greedy streams equal a plain engine run over the same prompts.
        trace = _trace(num_requests=6)
        clock = SimulatedClock()
        engine = _engine(tiny_pipeline, clock=clock)
        report = replay_trace(engine, trace, clock=clock)

        reference = _engine(tiny_pipeline)
        from repro.models.generation import GenerationConfig

        for request in trace.requests:
            reference.submit(
                reference.tokenizer.encode(request.prompt, add_bos=True),
                config=GenerationConfig.greedy_config(max_new_tokens=request.max_new_tokens),
                request_id=request.request_id,
            )
        expected = reference.run()
        for outcome in report.outcomes:
            assert outcome.token_ids == expected[outcome.request_id].token_ids

    def test_prefix_cache_reuse_shows_up_in_report(self, tiny_pipeline):
        trace = _trace(num_requests=8, num_tenants=2, preamble_groups=1, preamble_sentences=4)
        clock = SimulatedClock()
        engine = _engine(tiny_pipeline, clock=clock, prefix_cache=PrefixCache(max_tokens=4096))
        report = replay_trace(engine, trace, clock=clock)
        assert report.prefix_cache["enabled"] is True
        assert report.prefix_cache["prompt_tokens_reused"] > 0

    def test_simulated_clock_mismatch_rejected(self, tiny_pipeline):
        engine = _engine(tiny_pipeline)  # wall clock inside
        with pytest.raises(ValueError, match="share the replay clock"):
            replay_trace(engine, _trace(), clock=SimulatedClock())


class TestChurn:
    def test_scheduled_cancellation_yields_partial_stream(self, tiny_pipeline):
        requests = [
            TraceRequest(
                request_id="keep", arrival_seconds=0.0, tenant="tenant-0",
                traffic_class="interactive", prompt="the counter updates.",
                max_new_tokens=12,
            ),
            TraceRequest(
                request_id="cut", arrival_seconds=0.0, tenant="tenant-0",
                traffic_class="bulk", prompt="the fifo resets on overflow.",
                max_new_tokens=64, cancel_after=0.05,
            ),
        ]
        clock = SimulatedClock()
        engine = _engine(tiny_pipeline, clock=clock)
        report = replay_trace(
            engine,
            _manual_trace(requests),
            clock=clock,
            cost_model=StepCostModel(decode_token_seconds=0.01),
        )
        by_id = {o.request_id: o for o in report.outcomes}
        assert by_id["keep"].status == "finished"
        assert by_id["cut"].status == "cancelled"
        assert len(by_id["cut"].token_ids) < 64
        assert report.by_status() == {"finished": 1, "cancelled": 1}

    def test_deadline_expires_in_virtual_time(self, tiny_pipeline):
        requests = [
            TraceRequest(
                request_id="slow", arrival_seconds=0.0, tenant="tenant-0",
                traffic_class="bulk", prompt="the alu shifts in the next cycle.",
                max_new_tokens=64, deadline_seconds=0.08,
            ),
        ]
        clock = SimulatedClock()
        engine = _engine(tiny_pipeline, clock=clock)
        report = replay_trace(
            engine,
            _manual_trace(requests),
            clock=clock,
            cost_model=StepCostModel(decode_token_seconds=0.02),
        )
        outcome = report.outcomes[0]
        assert outcome.status == "deadline"
        assert len(outcome.token_ids) < 64
        # Virtual expiry is deterministic: the same replay repeats exactly.
        clock2 = SimulatedClock()
        engine2 = _engine(tiny_pipeline, clock=clock2)
        report2 = replay_trace(
            engine2,
            _manual_trace(requests),
            clock=clock2,
            cost_model=StepCostModel(decode_token_seconds=0.02),
        )
        assert report2.to_dict() == report.to_dict()


class TestAdmissionInReplay:
    def test_overload_sheds_only_bulk(self, tiny_pipeline):
        # Arrivals must keep coming after the breach trips, so the span of
        # the trace (24 req @ 30/s ≈ 0.8s) far exceeds the service rate
        # (2 concurrent requests at ~0.2-0.3s each) and the detector's
        # trip time (a few steps of queueing).
        trace = _trace(
            num_requests=24,
            requests_per_second=30.0,
            interactive_fraction=0.5,
            max_new_token_choices=(8, 16),
        )
        clock = SimulatedClock()
        engine = _engine(tiny_pipeline, clock=clock, max_active=2)
        admission = AdmissionController(
            SLOConfig(target_p95_ttft=0.02, window_seconds=5.0, min_samples=3)
        )
        report = replay_trace(
            engine,
            trace,
            clock=clock,
            cost_model=StepCostModel(decode_token_seconds=0.02),
            admission=admission,
        )
        shed = [o for o in report.outcomes if o.status == "shed"]
        assert shed, "overload scenario should shed some bulk traffic"
        assert all(o.traffic_class == "bulk" for o in shed)
        interactive = report.class_summary("interactive")
        assert interactive["shed"] == 0
        assert report.admission is not None
        assert report.admission["breach_count"] >= 1
        # Every request is accounted for exactly once.
        assert len(report.outcomes) == 24

    def test_defer_retries_eventually_admit(self, tiny_pipeline):
        # Tight per-tenant bucket, no SLO pressure: requests defer, then
        # admit as the bucket refills — nobody is lost or shed.
        trace = _trace(num_requests=6, num_tenants=1, preamble_groups=1,
                       requests_per_second=500.0, max_new_token_choices=(8,))
        clock = SimulatedClock()
        engine = _engine(tiny_pipeline, clock=clock)
        admission = AdmissionController(
            SLOConfig(target_p95_ttft=10.0, tenant_rate=40.0, tenant_burst=16.0)
        )
        report = replay_trace(engine, trace, clock=clock, admission=admission)
        assert report.by_status() == {"finished": 6}
        assert sum(o.defer_count for o in report.outcomes) > 0
        tenants = report.admission["tenants"]
        assert tenants["tenant-0"]["deferred"] > 0
        assert tenants["tenant-0"]["shed"] == 0


class TestWallClockReplay:
    def test_wall_clock_sync_replay(self, tiny_pipeline):
        trace = _trace(num_requests=4, requests_per_second=200.0)
        engine = _engine(tiny_pipeline)
        report = replay_trace(engine, trace, clock=WallClock())
        assert report.clock_mode == "wall"
        assert report.by_status() == {"finished": 4}

    def test_async_front_end_replay(self, tiny_pipeline):
        trace = _trace(num_requests=4, requests_per_second=200.0)
        engine = _engine(tiny_pipeline)

        async def main():
            server = AsyncServingEngine(engine)
            server.start()
            try:
                return await replay_trace_async(server, trace)
            finally:
                await server.close(cancel_pending=True)

        report = asyncio.run(main())
        assert report.clock_mode == "wall"
        assert report.by_status() == {"finished": 4}
        for outcome in report.outcomes:
            assert outcome.token_ids
            assert outcome.ttft_seconds is not None
