"""Trace generator tests: determinism, serialization, distribution shape.

The traffic harness's reproducibility guarantee starts here: the same
:class:`~repro.traffic.trace.TraceConfig` must always produce the same
trace, down to the canonical JSON bytes CI compares.  The distribution
tests are seeded and assert *bounds*, not exact values — they pin the
generator's shape (Poisson inter-arrival moments, class/length mixes,
preamble sharing) without becoming change-detector tests.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.traffic import Trace, TraceConfig, TraceRequest, generate_trace
from repro.traffic.trace import CLASS_PRIORITY


def _config(**overrides) -> TraceConfig:
    base = dict(num_requests=200, seed=11, requests_per_second=20.0)
    base.update(overrides)
    return TraceConfig(**base)


class TestDeterminism:
    def test_same_seed_byte_identical_json(self):
        a = generate_trace(_config())
        b = generate_trace(_config())
        assert a.to_json() == b.to_json()

    def test_different_seed_differs(self):
        a = generate_trace(_config(seed=1))
        b = generate_trace(_config(seed=2))
        assert a.to_json() != b.to_json()

    def test_canonical_json_is_sorted_and_compact(self):
        text = generate_trace(_config(num_requests=5)).to_json()
        assert ": " not in text and ", " not in text  # compact separators
        assert text.index('"config"') < text.index('"requests"')  # sorted keys


class TestRoundTrip:
    def test_json_round_trip_is_identity(self):
        trace = generate_trace(_config(deadline_fraction=0.3, cancel_fraction=0.3))
        again = Trace.from_json(trace.to_json())
        assert again.to_json() == trace.to_json()
        assert again.config == trace.config
        assert again.requests == trace.requests

    def test_dict_round_trip_preserves_optional_fields(self):
        trace = generate_trace(_config(num_requests=100, deadline_fraction=0.5, cancel_fraction=0.5))
        again = Trace.from_dict(trace.to_dict())
        with_deadline = [r for r in again.requests if r.deadline_seconds is not None]
        with_cancel = [r for r in again.requests if r.cancel_after is not None]
        assert with_deadline and with_cancel
        assert again.requests == trace.requests

    def test_save_load(self, tmp_path):
        trace = generate_trace(_config(num_requests=8))
        path = tmp_path / "trace.json"
        trace.save(str(path))
        assert Trace.load(str(path)).to_json() == trace.to_json()

    def test_unknown_schema_rejected(self):
        payload = generate_trace(_config(num_requests=2)).to_dict()
        payload["schema"] = "something.else"
        with pytest.raises(ValueError, match="schema"):
            Trace.from_dict(payload)


class TestDistributionShape:
    def test_poisson_inter_arrival_moments(self):
        # Exponential gaps with rate lambda: mean 1/lambda, std 1/lambda.
        config = _config(num_requests=600, requests_per_second=10.0)
        trace = generate_trace(config)
        arrivals = [r.arrival_seconds for r in trace.requests]
        gaps = np.diff([0.0] + arrivals)
        assert gaps.min() >= 0.0
        assert 0.08 < gaps.mean() < 0.125
        assert 0.07 < gaps.std() < 0.14

    def test_bursty_is_faster_and_clumped(self):
        poisson = generate_trace(_config(num_requests=400))
        bursty = generate_trace(_config(num_requests=400, arrival_process="bursty", burst_factor=6.0))
        # Burst windows multiply the rate, so the same request count lands
        # in less time and with higher gap dispersion (mix of two rates).
        assert bursty.duration_seconds < poisson.duration_seconds
        p_gaps = np.diff([0.0] + [r.arrival_seconds for r in poisson.requests])
        b_gaps = np.diff([0.0] + [r.arrival_seconds for r in bursty.requests])
        assert (b_gaps.std() / b_gaps.mean()) > (p_gaps.std() / p_gaps.mean())

    def test_class_mix_proportions(self):
        trace = generate_trace(_config(num_requests=500, interactive_fraction=0.3))
        frac = sum(r.traffic_class == "interactive" for r in trace.requests) / 500
        assert 0.22 < frac < 0.38

    def test_length_mix_covers_choices(self):
        config = _config(num_requests=300, max_new_token_choices=(4, 8, 16))
        trace = generate_trace(config)
        seen = {r.max_new_tokens for r in trace.requests}
        assert seen == {4, 8, 16}
        # Uniform choice: each option lands well away from 0 and 1.
        for option in (4, 8, 16):
            frac = sum(r.max_new_tokens == option for r in trace.requests) / 300
            assert 0.2 < frac < 0.47

    def test_tenant_population_and_preamble_sharing(self):
        config = _config(num_requests=300, num_tenants=4, preamble_groups=2)
        trace = generate_trace(config)
        assert set(trace.tenants()) <= {f"tenant-{i}" for i in range(4)}
        # Tenants in the same group share a preamble prefix; different
        # groups do not.  Groups are assigned round-robin: 0,2 vs 1,3.
        def preamble_of(tenant):
            prompts = [r.prompt for r in trace.requests if r.tenant == tenant]
            return prompts[0][:40]

        assert preamble_of("tenant-0") == preamble_of("tenant-2")
        assert preamble_of("tenant-1") == preamble_of("tenant-3")
        assert preamble_of("tenant-0") != preamble_of("tenant-1")

    def test_churn_fields_within_ranges(self):
        config = _config(
            num_requests=300,
            deadline_fraction=0.4,
            deadline_seconds_range=(0.5, 1.5),
            cancel_fraction=0.4,
            cancel_after_range=(0.1, 0.2),
        )
        trace = generate_trace(config)
        deadlines = [r.deadline_seconds for r in trace.requests if r.deadline_seconds is not None]
        cancels = [r.cancel_after for r in trace.requests if r.cancel_after is not None]
        assert 0.3 < len(deadlines) / 300 < 0.5
        assert 0.3 < len(cancels) / 300 < 0.5
        assert all(0.5 <= d <= 1.5 for d in deadlines)
        assert all(0.1 <= c <= 0.2 for c in cancels)


class TestValidationAndProperties:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_requests": 0},
            {"requests_per_second": 0.0},
            {"arrival_process": "weibull"},
            {"preamble_groups": 0},
            {"preamble_groups": 9},
            {"interactive_fraction": 1.5},
            {"deadline_fraction": -0.1},
            {"cancel_fraction": 2.0},
            {"burst_duty": 0.0},
        ],
    )
    def test_bad_config_rejected(self, overrides):
        with pytest.raises(ValueError):
            generate_trace(_config(**overrides))

    def test_priority_follows_class(self):
        request = TraceRequest(
            request_id="r0", arrival_seconds=0.0, tenant="tenant-0",
            traffic_class="interactive", prompt="p", max_new_tokens=4,
        )
        assert request.priority == CLASS_PRIORITY["interactive"]
        assert CLASS_PRIORITY["interactive"] > CLASS_PRIORITY["bulk"]

    def test_request_ids_unique_and_ordered(self):
        trace = generate_trace(_config(num_requests=50))
        ids = [r.request_id for r in trace.requests]
        assert len(set(ids)) == 50
        arrivals = [r.arrival_seconds for r in trace.requests]
        assert arrivals == sorted(arrivals)

    def test_config_is_plain_data(self):
        # The config must stay a flat dataclass of JSON-compatible scalars
        # (that is what makes the trace schema round-trippable).
        for field in dataclasses.fields(TraceConfig):
            value = getattr(_config(), field.name)
            assert isinstance(value, (int, float, str, tuple))
