"""Tests for the Medusa training objective (eq. 2) and the fine-tuning loop."""

import numpy as np
import pytest

from repro.core.training import MedusaLoss, MedusaTrainer, TrainerConfig, TrainingSample
from repro.models.decoder_lm import DecoderConfig, TinyCodeLlama
from repro.models.encdec_lm import EncDecConfig, TinyCodeT5p
from repro.models.medusa import MedusaLM
from repro.tokenizer.bpe import BPETokenizer


@pytest.fixture(scope="module")
def small_tokenizer():
    tokenizer = BPETokenizer()
    tokenizer.train(
        [
            "module m (input clk, input [3:0] d, output reg [3:0] q);",
            "always @(posedge clk) q <= d; endmodule",
            "[FRAG]module[FRAG] m [FRAG]([FRAG]input[FRAG] clk[FRAG]",
            "Write a Verilog module named m.",
        ],
        vocab_size=260,
    )
    return tokenizer


def _tiny_model(tokenizer, num_heads=3, architecture="decoder-only"):
    vocab = tokenizer.vocab_size
    if architecture == "encoder-decoder":
        backbone = TinyCodeT5p(
            EncDecConfig(vocab_size=vocab, dim=16, num_encoder_layers=1, num_decoder_layers=1, num_heads=2, max_seq_len=128)
        )
    else:
        backbone = TinyCodeLlama(DecoderConfig(vocab_size=vocab, dim=16, num_layers=1, num_heads=2, max_seq_len=128))
    return MedusaLM(backbone, vocab_size=vocab, num_medusa_heads=num_heads)


class TestMedusaLoss:
    def test_lambda_schedule_endpoints(self):
        loss = MedusaLoss(ignore_id=5, lambda_max=0.2)
        assert loss.lambda_at(0.0) == pytest.approx(0.0)
        assert loss.lambda_at(1.0) == pytest.approx(0.2)

    def test_lambda_schedule_monotone(self):
        loss = MedusaLoss(ignore_id=5, lambda_max=0.2)
        values = [loss.lambda_at(p) for p in np.linspace(0, 1, 11)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_lambda_clamped_outside_range(self):
        loss = MedusaLoss(ignore_id=5, lambda_max=0.2)
        assert loss.lambda_at(-1.0) == 0.0
        assert loss.lambda_at(2.0) == pytest.approx(0.2)

    def test_total_loss_is_weighted_sum(self):
        rng = np.random.default_rng(0)
        vocab, seq = 12, 6
        base_logits = rng.normal(size=(1, seq, vocab))
        head_logits = [rng.normal(size=(1, seq, vocab)) for _ in range(2)]
        labels = np.vstack([rng.integers(0, vocab, size=(1, seq)) for _ in range(3)])
        loss = MedusaLoss(ignore_id=99, lambda_max=0.2, gamma=0.8)
        total, parts, _, _ = loss.compute(base_logits, head_logits, labels, progress=1.0)
        expected = parts["base"] + 0.2 * (0.8 * parts["head1"] + 0.8**2 * parts["head2"])
        assert total == pytest.approx(expected, rel=1e-6)

    def test_gamma_decay_weights_heads(self):
        rng = np.random.default_rng(1)
        vocab, seq = 10, 4
        base_logits = rng.normal(size=(1, seq, vocab))
        head_logits = [rng.normal(size=(1, seq, vocab)) for _ in range(2)]
        labels = np.vstack([rng.integers(0, vocab, size=(1, seq)) for _ in range(3)])
        loss = MedusaLoss(ignore_id=99, lambda_max=0.2, gamma=0.8)
        _, _, _, grad_heads = loss.compute(base_logits, head_logits, labels, progress=1.0)
        # Head 2's gradient is scaled by an extra factor of gamma relative to head 1.
        ratio = np.abs(grad_heads[1]).sum() / max(np.abs(grad_heads[0]).sum(), 1e-12)
        assert ratio < 1.0

    def test_zero_progress_disables_head_gradients(self):
        rng = np.random.default_rng(2)
        vocab, seq = 10, 4
        base_logits = rng.normal(size=(1, seq, vocab))
        head_logits = [rng.normal(size=(1, seq, vocab))]
        labels = np.vstack([rng.integers(0, vocab, size=(1, seq)) for _ in range(2)])
        loss = MedusaLoss(ignore_id=99)
        _, _, _, grad_heads = loss.compute(base_logits, head_logits, labels, progress=0.0)
        assert np.allclose(grad_heads[0], 0.0)

    def test_ignored_labels_produce_zero_grad_rows(self):
        rng = np.random.default_rng(3)
        vocab, seq = 8, 5
        base_logits = rng.normal(size=(1, seq, vocab))
        labels = np.array([[1, 2, 7, 7, 3]])
        loss = MedusaLoss(ignore_id=7)
        _, _, grad_base, _ = loss.compute(base_logits, [], labels, progress=1.0)
        assert np.allclose(grad_base[0, 2], 0.0)
        assert np.allclose(grad_base[0, 3], 0.0)
        assert not np.allclose(grad_base[0, 0], 0.0)


class TestPrepareInputs:
    def test_decoder_only_shapes(self, small_tokenizer):
        model = _tiny_model(small_tokenizer)
        trainer = MedusaTrainer(model, small_tokenizer, TrainerConfig(method="ours", max_seq_len=64))
        prompt = small_tokenizer.encode("Write a Verilog module named m.", add_bos=True)
        target = small_tokenizer.encode("[FRAG]module[FRAG] m;", add_eos=True)
        sample = TrainingSample(prompt_ids=prompt, target_ids=target)
        input_ids, encoder_ids, labels = trainer.prepare_inputs(sample)
        assert encoder_ids is None
        assert labels.shape == (model.num_medusa_heads + 1, input_ids.shape[0])

    def test_decoder_only_prompt_masked(self, small_tokenizer):
        model = _tiny_model(small_tokenizer)
        trainer = MedusaTrainer(model, small_tokenizer, TrainerConfig(method="ours", max_seq_len=64))
        prompt = small_tokenizer.encode("Write a Verilog module named m.", add_bos=True)
        target = small_tokenizer.encode("[FRAG]module[FRAG] m;", add_eos=True)
        _, _, labels = trainer.prepare_inputs(TrainingSample(prompt_ids=prompt, target_ids=target))
        ignore = small_tokenizer.vocab.ignore_id
        prompt_region = labels[0, : len(prompt) - 1]
        assert np.all(prompt_region == ignore)

    def test_encoder_decoder_shapes(self, small_tokenizer):
        model = _tiny_model(small_tokenizer, architecture="encoder-decoder")
        trainer = MedusaTrainer(model, small_tokenizer, TrainerConfig(method="ours", max_seq_len=64))
        prompt = small_tokenizer.encode("Write a Verilog module named m.", add_bos=True)
        target = small_tokenizer.encode("[FRAG]module[FRAG] m;", add_eos=True)
        input_ids, encoder_ids, labels = trainer.prepare_inputs(TrainingSample(prompt_ids=prompt, target_ids=target))
        assert encoder_ids is not None
        assert labels.shape[1] == input_ids.shape[0]

    def test_medusa_method_keeps_frag_free_labels_unmasked(self, small_tokenizer):
        model = _tiny_model(small_tokenizer)
        trainer = MedusaTrainer(model, small_tokenizer, TrainerConfig(method="medusa", max_seq_len=64))
        prompt = small_tokenizer.encode("Write a module.", add_bos=True)
        target = small_tokenizer.encode("module m; endmodule", add_eos=True)
        _, _, labels = trainer.prepare_inputs(TrainingSample(prompt_ids=prompt, target_ids=target))
        ignore = small_tokenizer.vocab.ignore_id
        # Without syntax enrichment the only ignores come from prompt masking
        # and pad back-fill, so the head rows retain ordinary supervision in
        # the code region.
        code_region = labels[1, len(prompt) :]
        assert np.any(code_region != ignore)

    def test_truncation_to_max_seq_len(self, small_tokenizer):
        model = _tiny_model(small_tokenizer)
        trainer = MedusaTrainer(model, small_tokenizer, TrainerConfig(method="ours", max_seq_len=16))
        prompt = small_tokenizer.encode("Write a Verilog module named m. " * 5, add_bos=True)
        target = small_tokenizer.encode("module m; endmodule " * 5, add_eos=True)
        input_ids, _, _ = trainer.prepare_inputs(TrainingSample(prompt_ids=prompt, target_ids=target))
        assert input_ids.shape[0] <= 16


class TestTrainingLoop:
    def _samples(self, tokenizer, method="ours", count=4):
        samples = []
        for i in range(count):
            prompt = tokenizer.encode(f"Write a Verilog module named m{i}.", add_bos=True)
            if method == "ours":
                code = f"[FRAG]module[FRAG] m{i}[FRAG]([FRAG]input[FRAG] clk[FRAG])[FRAG];[FRAG]endmodule[FRAG]"
            else:
                code = f"module m{i}(input clk); endmodule"
            samples.append(TrainingSample(prompt_ids=prompt, target_ids=tokenizer.encode(code, add_eos=True)))
        return samples

    def test_loss_decreases(self, small_tokenizer):
        # The *base* loss must fall; the total loss is not monotone because the
        # head-loss weight lambda grows from 0 to 0.2 during training (eq. 2).
        model = _tiny_model(small_tokenizer, num_heads=2)
        trainer = MedusaTrainer(model, small_tokenizer, TrainerConfig(epochs=8, method="ours", warmup_steps=2, max_seq_len=64))
        history = trainer.train(self._samples(small_tokenizer))
        first = np.mean(history.base_loss[:4])
        last = np.mean(history.base_loss[-4:])
        assert last < first

    def test_history_lengths_match(self, small_tokenizer):
        model = _tiny_model(small_tokenizer, num_heads=1)
        trainer = MedusaTrainer(model, small_tokenizer, TrainerConfig(epochs=2, method="medusa", max_seq_len=64))
        samples = self._samples(small_tokenizer, method="medusa")
        history = trainer.train(samples)
        assert len(history.steps) == len(history.total_loss) == len(history.base_loss)
        assert len(history.steps) == 2 * len(samples)

    def test_ntp_training_with_zero_heads(self, small_tokenizer):
        model = _tiny_model(small_tokenizer, num_heads=0)
        trainer = MedusaTrainer(model, small_tokenizer, TrainerConfig(epochs=2, method="ntp", max_seq_len=64))
        history = trainer.train(self._samples(small_tokenizer, method="ntp"))
        assert history.final_loss() > 0

    def test_empty_sample_list_raises(self, small_tokenizer):
        model = _tiny_model(small_tokenizer)
        trainer = MedusaTrainer(model, small_tokenizer, TrainerConfig())
        with pytest.raises(ValueError):
            trainer.train([])

    def test_training_modifies_parameters(self, small_tokenizer):
        model = _tiny_model(small_tokenizer, num_heads=1)
        before = [p.data.copy() for p in model.parameters()]
        trainer = MedusaTrainer(model, small_tokenizer, TrainerConfig(epochs=1, method="ours", max_seq_len=64))
        trainer.train(self._samples(small_tokenizer, count=2))
        after = list(model.parameters())
        changed = sum(not np.allclose(b, a.data) for b, a in zip(before, after))
        assert changed > len(after) // 2

    def test_encoder_decoder_training_runs(self, small_tokenizer):
        model = _tiny_model(small_tokenizer, num_heads=2, architecture="encoder-decoder")
        trainer = MedusaTrainer(model, small_tokenizer, TrainerConfig(epochs=1, method="ours", max_seq_len=64))
        history = trainer.train(self._samples(small_tokenizer, count=2))
        assert len(history.total_loss) == 2
