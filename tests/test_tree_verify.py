"""Property-based equivalence suite for token-tree speculative verification.

Three layers of guarantees, each checked over seeded random cases via the
dependency-free :mod:`proptest` runner:

* **structure** — :class:`~repro.core.token_tree.TokenTree` exactly
  round-trips its candidate set, deduplicates shared prefixes (never more
  nodes than tokens, strictly fewer whenever two candidates share a prefix),
  and keeps parents before children;
* **logits** — a tree-masked forward produces the same base-model logits at
  every candidate position as the row-batched layout, cached and uncached,
  on random candidate sets including adversarial shared prefixes and exact
  duplicates;
* **decoding** — full generation with ``tree_verify`` commits token
  sequences identical to the row-batched reference for NTP/Medusa/Ours,
  cached and uncached, greedy and sampling (the serving-engine counterpart
  lives in ``test_serving.py``).

Quick case counts run by default; the ``slow``-marked variants run the
full-size sweeps (CI's coverage job passes ``--runslow``).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from proptest import Cases, for_all, num_cases

from repro.core.decoding import dedupe_candidates, pad_candidates, propose_candidates
from repro.core.token_tree import (
    TokenTree,
    tree_bias_cached,
    tree_bias_full,
    tree_position_offsets,
    tree_position_offsets_full,
)
from repro.models.decoder_lm import DecoderConfig, TinyCodeLlama
from repro.models.generation import GenerationConfig
from repro.models.medusa import MedusaLM
from repro.nn.kv_cache import KVCache

VOCAB = 59


@pytest.fixture(scope="module")
def untrained_model() -> MedusaLM:
    """A small untrained decoder-only MedusaLM (logits equivalence needs no training)."""
    backbone = TinyCodeLlama(DecoderConfig(vocab_size=VOCAB, dim=32, num_layers=2, num_heads=4, max_seq_len=96))
    return MedusaLM(backbone, vocab_size=VOCAB, num_medusa_heads=3, seed=7)


def random_candidates(cases: Cases) -> list:
    """A random candidate set skewed toward the adversarial shapes."""
    return cases.candidate_set(
        count=cases.integer(1, 5),
        max_length=cases.integer(1, 6),
        vocab_size=VOCAB,
        shared_prefix=cases.boolean(0.6),
        with_duplicates=cases.boolean(0.4),
    )


class TestTokenTreeStructure:
    def test_round_trips_candidates_and_dedups_prefixes(self):
        def prop(cases: Cases) -> None:
            candidates = random_candidates(cases)
            tree = TokenTree.from_candidates(candidates)
            total_tokens = sum(len(candidate) for candidate in candidates)
            assert 1 <= tree.size <= total_tokens
            for candidate, nodes in zip(candidates, tree.candidate_nodes):
                assert [tree.tokens[node] for node in nodes] == list(candidate)
                assert [tree.depths[node] for node in nodes] == list(range(len(candidate)))
                # Consecutive candidate tokens are parent/child in the tree.
                for parent_node, child_node in zip(nodes, nodes[1:]):
                    assert tree.parents[child_node] == parent_node
            for node, parent in enumerate(tree.parents):
                assert parent < node  # parents precede children (keep_path relies on this)

        for_all(num_cases(25, 400), prop, seed=11)

    def test_shared_prefix_strictly_shrinks_the_tree(self):
        def prop(cases: Cases) -> None:
            prefix = cases.token_list(cases.integer(1, 4), VOCAB)
            tails = [cases.token_list(cases.integer(1, 3), VOCAB) for _ in range(cases.integer(2, 4))]
            candidates = [prefix + tail for tail in tails]
            tree = TokenTree.from_candidates(candidates)
            assert tree.size < sum(len(candidate) for candidate in candidates)
            # All candidates route through the same prefix nodes.
            first = tree.candidate_nodes[0][: len(prefix)]
            for nodes in tree.candidate_nodes:
                assert nodes[: len(prefix)] == first

        for_all(num_cases(25, 400), prop, seed=12)

    def test_duplicate_candidates_collapse_to_one_path(self):
        candidates = [[3, 4, 5], [3, 4, 5], [3, 9]]
        tree = TokenTree.from_candidates(candidates)
        assert tree.candidate_nodes[0] == tree.candidate_nodes[1]
        assert tree.size == 4  # 3,4,5 shared + the 9 branch

    def test_forest_mode_never_shares_nodes(self):
        candidates = [[3, 4, 5], [3, 4, 5], [3, 9]]
        forest = TokenTree.from_candidates(candidates, dedup=False)
        assert forest.size == sum(len(candidate) for candidate in candidates)
        flat = [node for nodes in forest.candidate_nodes for node in nodes]
        assert len(set(flat)) == len(flat)

    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            TokenTree.from_candidates([])
        with pytest.raises(ValueError):
            TokenTree.from_candidates([[1], []])

    def test_ancestor_mask_is_path_closure(self):
        tree = TokenTree.from_candidates([[1, 2, 3], [1, 4]])
        mask = tree.ancestor_mask()
        # Node ids: 0:1, 1:2, 2:3, 3:4.
        assert mask[2].tolist() == [True, True, True, False]
        assert mask[3].tolist() == [True, False, False, True]
        assert np.array_equal(np.diag(mask), np.ones(tree.size, dtype=bool))


class TestTreeLogitsEquivalence:
    """Tree-masked forwards must reproduce row-batched logits exactly where read."""

    def _row_logits(self, model, prefix, candidates):
        padded = pad_candidates(candidates)
        rows = np.asarray([prefix + candidate for candidate in padded], dtype=np.int64)
        base, _ = model.forward_hidden(rows)
        return base

    def test_uncached_tree_matches_row_batched(self, untrained_model):
        def prop(cases: Cases) -> None:
            prefix = cases.token_list(cases.integer(1, 8), VOCAB)
            candidates = dedupe_candidates(random_candidates(cases))
            tree = TokenTree.from_candidates(candidates)
            prefix_len = len(prefix)

            row_base = self._row_logits(untrained_model, prefix, candidates)
            bias = tree_bias_full(prefix_len, tree)
            offsets = tree_position_offsets_full(prefix_len, tree)
            tree_base, _ = untrained_model.forward_hidden(
                np.asarray([prefix + tree.tokens], dtype=np.int64), attn_bias=bias, position_offsets=offsets
            )
            for row, nodes in enumerate(tree.candidate_nodes):
                for position, node in enumerate(nodes):
                    np.testing.assert_allclose(
                        tree_base[0, prefix_len + node],
                        row_base[row, prefix_len + position],
                        atol=1e-4,
                        err_msg=f"candidate {row} position {position} (node {node})",
                    )

        for_all(num_cases(8, 80), prop, seed=21)

    def test_cached_tree_matches_cached_row_batched(self, untrained_model):
        def prop(cases: Cases) -> None:
            prefix = cases.token_list(cases.integer(1, 8), VOCAB)
            candidates = dedupe_candidates(random_candidates(cases))
            tree = TokenTree.from_candidates(candidates)
            prefix_len = len(prefix)

            # Row-batched cached verification (the reference layout).
            row_cache = untrained_model.new_cache()
            untrained_model.forward_hidden(np.asarray([prefix], dtype=np.int64), cache=row_cache)
            padded = pad_candidates(candidates)
            row_cache.expand_batch(len(padded))
            row_base, _ = untrained_model.forward_hidden(np.asarray(padded, dtype=np.int64), cache=row_cache)

            # Tree verification over a single cached row.
            tree_cache = untrained_model.new_cache(capacity=prefix_len + tree.size)
            untrained_model.forward_hidden(np.asarray([prefix], dtype=np.int64), cache=tree_cache)
            bias = tree_bias_cached([tree], [prefix_len], window=tree.size, view=prefix_len + tree.size)
            offsets = tree_position_offsets([tree], tree.size)
            tree_base, _ = untrained_model.forward_hidden(
                np.asarray([tree.tokens], dtype=np.int64),
                cache=tree_cache,
                attn_bias=bias,
                position_offsets=offsets,
            )
            for row, nodes in enumerate(tree.candidate_nodes):
                for position, node in enumerate(nodes):
                    np.testing.assert_allclose(
                        tree_base[0, node],
                        row_base[row, position],
                        atol=1e-4,
                        err_msg=f"candidate {row} position {position} (node {node})",
                    )

        for_all(num_cases(8, 80), prop, seed=22)

    def test_keep_path_matches_sequential_prefix_cache(self, untrained_model):
        """After accept-path compaction the cache continues exactly like a
        cache that only ever saw the committed tokens."""

        def prop(cases: Cases) -> None:
            prefix = cases.token_list(cases.integer(1, 8), VOCAB)
            candidates = dedupe_candidates(random_candidates(cases))
            tree = TokenTree.from_candidates(candidates)
            prefix_len = len(prefix)
            winner = cases.integer(0, len(candidates) - 1)
            committed = cases.integer(1, len(candidates[winner]))

            tree_cache = untrained_model.new_cache(capacity=96 + tree.size)
            untrained_model.forward_hidden(np.asarray([prefix], dtype=np.int64), cache=tree_cache)
            bias = tree_bias_cached([tree], [prefix_len], window=tree.size, view=prefix_len + tree.size)
            offsets = tree_position_offsets([tree], tree.size)
            untrained_model.forward_hidden(
                np.asarray([tree.tokens], dtype=np.int64),
                cache=tree_cache,
                attn_bias=bias,
                position_offsets=offsets,
            )
            tree_cache.keep_path(prefix_len, tree.path(winner, committed))

            straight_cache = untrained_model.new_cache()
            committed_tokens = candidates[winner][:committed]
            untrained_model.forward_hidden(np.asarray([prefix + committed_tokens], dtype=np.int64), cache=straight_cache)

            assert tree_cache.length == straight_cache.length == prefix_len + committed
            next_token = cases.token(VOCAB)
            from_tree, _ = untrained_model.forward_hidden(np.asarray([[next_token]], dtype=np.int64), cache=tree_cache)
            from_straight, _ = untrained_model.forward_hidden(
                np.asarray([[next_token]], dtype=np.int64), cache=straight_cache
            )
            np.testing.assert_allclose(from_tree[0, -1], from_straight[0, -1], atol=1e-4)

        for_all(num_cases(8, 80), prop, seed=23)

    def test_compact_paths_matches_keep_path_per_row(self, untrained_model):
        def prop(cases: Cases) -> None:
            batch = cases.integer(1, 3)
            prefixes = [cases.integer(1, 6) for _ in range(batch)]
            trees, caches = [], []
            for prefix_len in prefixes:
                prefix = cases.token_list(prefix_len, VOCAB)
                tree = TokenTree.from_candidates(dedupe_candidates(random_candidates(cases)))
                cache = untrained_model.new_cache(capacity=prefix_len + tree.size)
                untrained_model.forward_hidden(np.asarray([prefix], dtype=np.int64), cache=cache)
                bias = tree_bias_cached([tree], [prefix_len], window=tree.size, view=prefix_len + tree.size)
                untrained_model.forward_hidden(
                    np.asarray([tree.tokens], dtype=np.int64),
                    cache=cache,
                    attn_bias=bias,
                    position_offsets=tree_position_offsets([tree], tree.size),
                )
                trees.append(tree)
                caches.append(cache)
            merged = KVCache.concat(caches)
            paths = []
            for tree in trees:
                winner = cases.integer(0, tree.num_candidates - 1)
                committed = cases.integer(1, len(tree.candidate_nodes[winner]))
                paths.append(tree.path(winner, committed))
            compacted = merged.compact_paths(range(batch), prefixes, paths)
            for row, (cache, prefix_len, path) in enumerate(zip(caches, prefixes, paths)):
                cache.keep_path(prefix_len, path)
                assert compacted.lengths[row] == cache.length
                view = cache.length
                for layer_index in range(cache.num_layers):
                    np.testing.assert_array_equal(
                        compacted.layers[layer_index].k[row, :, :view],
                        cache.layers[layer_index].k[0, :, :view],
                    )

        for_all(num_cases(6, 60), prop, seed=24)


class TestCandidateDedup:
    """Regression: identical candidates must not occupy verification rows."""

    def test_budget_clip_duplicates_are_removed(self):
        # With one remaining token every candidate collapses to [first_token]:
        # the exact waste dedupe_candidates exists to remove.
        clipped = [candidate[:1] for candidate in [[7, 3, 4], [9, 3, 4], [7, 5, 4]]]
        assert dedupe_candidates(clipped) == [[7], [9]]

    def test_first_occurrence_order_is_preserved(self):
        candidates = [[1, 2], [3], [1, 2], [3], [4]]
        assert dedupe_candidates(candidates) == [[1, 2], [3], [4]]

    def test_propose_candidates_never_returns_duplicates(self):
        def prop(cases: Cases) -> None:
            vocab = cases.integer(2, VOCAB)
            rng = np.random.default_rng(cases.case_index)
            base_logits = np.asarray(rng.normal(size=vocab), dtype=np.float32)
            heads = [np.asarray(rng.normal(size=vocab), dtype=np.float32) for _ in range(cases.integer(0, 4))]
            config = (
                GenerationConfig.greedy_config(8)
                if cases.boolean()
                else GenerationConfig.sampling_config(0.8, 8, seed=cases.case_index)
            )
            candidates = propose_candidates(
                base_logits,
                heads,
                config,
                np.random.default_rng(config.seed),
                num_candidates=cases.integer(1, 4),
                max_heads=len(heads),
            )
            assert candidates, "at least one candidate"
            keys = [tuple(candidate) for candidate in candidates]
            assert len(set(keys)) == len(keys), f"duplicate candidates {candidates}"

        for_all(num_cases(30, 500), prop, seed=31)


METHODS = ("ntp", "medusa", "ours")


def _generation_cases(quick: bool):
    """(config, prompts-count) pairs exercised by the end-to-end equivalence tests."""
    configs = [
        GenerationConfig.greedy_config(24),
        GenerationConfig.sampling_config(0.8, 20, seed=5),
    ]
    if not quick:
        configs += [
            GenerationConfig.sampling_config(1.2, 24, seed=9),
            GenerationConfig.greedy_config(48),
        ]
    return configs


class TestEndToEndTreeEquivalence:
    """Tree verification must commit exactly the row-batched token sequences."""

    def _assert_equivalent(self, pipeline, method, use_cache, configs, prompt_count):
        decoder = pipeline.decoder_for(method, use_cache=use_cache)
        prompts = [example.prompt_text() for example in pipeline.examples][:prompt_count]
        for config in configs:
            for prompt in prompts:
                row = decoder.generate_from_text(prompt, config)
                tree = decoder.generate_from_text(prompt, replace(config, tree_verify=True))
                assert tree.token_ids == row.token_ids, (method, use_cache, config)
                assert tree.steps == row.steps
                assert tree.stopped_by_eos == row.stopped_by_eos
                # The whole point of the tree: never verify more than the
                # row layout, strictly less when candidates share a prefix
                # (always true for the default speculative candidate set).
                if method != "ntp":
                    assert tree.tokens_verified < row.tokens_verified, (method, use_cache, config)

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("use_cache", [True, False], ids=["cached", "uncached"])
    def test_token_identical_quick(self, tiny_pipeline, method, use_cache):
        self._assert_equivalent(tiny_pipeline, method, use_cache, _generation_cases(quick=True), prompt_count=2)

    @pytest.mark.slow
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("use_cache", [True, False], ids=["cached", "uncached"])
    def test_token_identical_full(self, tiny_pipeline, method, use_cache):
        self._assert_equivalent(tiny_pipeline, method, use_cache, _generation_cases(quick=False), prompt_count=6)

    def test_tree_cache_stays_single_row(self, tiny_pipeline):
        """Tree verification never expands the cache: one row start to finish."""
        decoder = tiny_pipeline.decoder_for("ours")
        model = tiny_pipeline.models["ours"]
        original_new_cache = model.new_cache
        caches = []

        def tracking_new_cache(batch=1, capacity=None):
            cache = original_new_cache(batch=batch, capacity=capacity)
            caches.append(cache)
            return cache

        model.new_cache = tracking_new_cache
        try:
            prompt = tiny_pipeline.examples[0].prompt_text()
            decoder.generate_from_text(prompt, GenerationConfig.greedy_config(16, tree_verify=True))
        finally:
            model.new_cache = original_new_cache
        assert len(caches) == 1
        assert caches[0].batch == 1
