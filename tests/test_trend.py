"""Tests for the append-only benchmark trend ledger (``benchmarks/trend.py``).

The ledger lives next to the bench harness, outside ``src/``, so it is
imported here by path.  The suite pins the schema contract: strictly
increasing gap-free sequence numbers, validated on read and write, with the
tracked ``benchmarks/results/trend.json`` itself required to validate.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCH_DIR) not in sys.path:
    sys.path.insert(0, str(BENCH_DIR))

from trend import (  # noqa: E402  (path setup must precede the import)
    TREND_SCHEMA,
    TrendSchemaError,
    append_trend_entry,
    load_trend,
    validate_trend,
)


def _entry(sequence: int, **overrides) -> dict:
    entry = {"sequence": sequence, "bench": "b", "mode": "smoke", "metrics": {"x": 1.0}}
    entry.update(overrides)
    return entry


class TestValidateTrend:
    def test_empty_ledger_is_valid(self):
        assert validate_trend({"schema": TREND_SCHEMA, "entries": []}) == []

    def test_valid_history(self):
        entries = [_entry(1), _entry(2, mode="default"), _entry(3, mode="full")]
        assert validate_trend({"schema": TREND_SCHEMA, "entries": entries}) == entries

    @pytest.mark.parametrize(
        "document",
        [
            [],
            {"entries": []},
            {"schema": 999, "entries": []},
            {"schema": TREND_SCHEMA, "entries": {}},
        ],
    )
    def test_bad_top_level(self, document):
        with pytest.raises(TrendSchemaError):
            validate_trend(document)

    @pytest.mark.parametrize(
        "entries",
        [
            [_entry(2)],  # must start at 1
            [_entry(1), _entry(3)],  # gap
            [_entry(1), _entry(1)],  # repeat
            [_entry(2), _entry(1)],  # reordered
            [_entry(1, bench="")],
            [_entry(1, mode="nightly")],
            [_entry(1, metrics={})],
            [_entry(1, metrics={"x": "fast"})],
            [_entry(1, metrics={"x": True})],  # bools are not measurements
        ],
    )
    def test_bad_entries(self, entries):
        with pytest.raises(TrendSchemaError):
            validate_trend({"schema": TREND_SCHEMA, "entries": entries})


class TestAppendTrendEntry:
    def test_append_grows_monotonically(self, tmp_path):
        path = tmp_path / "trend.json"
        assert load_trend(path) == []  # absent file = empty history
        first = append_trend_entry("bench-a", "smoke", {"m": 1.5}, path=path)
        second = append_trend_entry("bench-b", "smoke", {"m": 2.5}, path=path)
        assert (first["sequence"], second["sequence"]) == (1, 2)
        entries = load_trend(path)
        assert [e["bench"] for e in entries] == ["bench-a", "bench-b"]
        assert [e["sequence"] for e in entries] == [1, 2]

    def test_append_preserves_existing_entries(self, tmp_path):
        path = tmp_path / "trend.json"
        append_trend_entry("bench-a", "smoke", {"m": 1.0}, path=path)
        before = load_trend(path)
        append_trend_entry("bench-a", "smoke", {"m": 2.0}, path=path)
        assert load_trend(path)[: len(before)] == before

    def test_corrupt_history_rejected(self, tmp_path):
        path = tmp_path / "trend.json"
        path.write_text(json.dumps({"schema": TREND_SCHEMA, "entries": [_entry(7)]}))
        with pytest.raises(TrendSchemaError):
            append_trend_entry("bench-a", "smoke", {"m": 1.0}, path=path)

    def test_bad_metric_value_rejected(self, tmp_path):
        path = tmp_path / "trend.json"
        with pytest.raises(TrendSchemaError):
            append_trend_entry("bench-a", "smoke", {"m": "NaN-ish"}, path=path)
        assert not path.exists()  # nothing written on a rejected append


def test_tracked_ledger_validates():
    """The committed benchmarks/results/trend.json must satisfy its own schema."""
    tracked = BENCH_DIR / "results" / "trend.json"
    assert tracked.is_file(), "tracked trend ledger is missing"
    entries = validate_trend(json.loads(tracked.read_text()))
    assert entries, "tracked trend ledger should carry at least the seed entry"
