"""Tests for four-state values."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.values import FourState, as_four_state


class TestConstruction:
    def test_from_int(self):
        value = FourState.from_int(10, width=8)
        assert value.to_int() == 10
        assert value.is_fully_known

    def test_from_int_masks_to_width(self):
        value = FourState.from_int(0x1FF, width=8)
        assert value.to_int() == 0xFF

    def test_negative_from_int_two_complement(self):
        value = FourState.from_int(-1, width=4)
        assert value.value == 0xF

    def test_unknown_value(self):
        value = FourState.unknown_value(4)
        assert not value.is_fully_known
        assert value.to_bit_string() == "xxxx"

    def test_high_z(self):
        value = FourState.high_z(3)
        assert value.to_bit_string() == "zzz"

    def test_from_bits(self):
        value = FourState.from_bits("10x1z")
        assert value.width == 5
        assert value.bit(0) == "z"
        assert value.bit(1) == "1"
        assert value.bit(2) == "x"
        assert value.bit(4) == "1"

    def test_from_bits_question_mark_is_z(self):
        assert FourState.from_bits("1?").bit(0) == "z"

    def test_from_bits_invalid_char(self):
        with pytest.raises(ValueError):
            FourState.from_bits("12")

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            FourState(width=0, value=0)

    def test_from_literal_binary(self):
        value = FourState.from_literal(4, "b", "1010")
        assert value.to_int() == 10
        assert value.width == 4

    def test_from_literal_hex(self):
        assert FourState.from_literal(8, "h", "A5").to_int() == 0xA5

    def test_from_literal_octal(self):
        assert FourState.from_literal(6, "o", "17").to_int() == 0o17

    def test_from_literal_decimal(self):
        assert FourState.from_literal(8, "d", "42").to_int() == 42

    def test_from_literal_decimal_unsized(self):
        value = FourState.from_literal(None, "d", "7")
        assert value.width == 32
        assert value.to_int() == 7

    def test_from_literal_with_x(self):
        value = FourState.from_literal(4, "b", "1x0z")
        assert value.bit(2) == "x"
        assert value.bit(0) == "z"

    def test_from_literal_truncates(self):
        assert FourState.from_literal(4, "h", "FF").to_int() == 0xF

    def test_from_literal_pads_with_zero(self):
        assert FourState.from_literal(8, "b", "1").to_int() == 1

    def test_from_literal_underscores(self):
        assert FourState.from_literal(16, "h", "DE_AD").to_int() == 0xDEAD


class TestInterpretation:
    def test_signed_to_int(self):
        value = FourState.from_int(0xF, width=4, signed=True)
        assert value.to_int() == -1

    def test_to_signed_int_regardless_of_flag(self):
        value = FourState.from_int(0x8, width=4)
        assert value.to_signed_int() == -8

    def test_is_true_for_nonzero(self):
        assert FourState.from_int(2, width=4).is_true() is True

    def test_is_true_for_zero(self):
        assert FourState.from_int(0, width=4).is_true() is False

    def test_is_true_unknown(self):
        assert FourState.unknown_value(4).is_true() is None

    def test_partially_known_nonzero_is_true(self):
        # A value with a known 1 bit is true even if other bits are X.
        value = FourState(width=4, value=0b0010, unknown=0b1000)
        assert value.is_true() is True

    def test_bit_out_of_range_is_x(self):
        assert FourState.from_int(1, width=2).bit(5) == "x"

    def test_to_bit_string_msb_first(self):
        assert FourState.from_int(0b1010, width=4).to_bit_string() == "1010"


class TestResize:
    def test_zero_extend(self):
        assert FourState.from_int(3, width=2).resize(6).to_int() == 3

    def test_sign_extend(self):
        value = FourState.from_int(0b10, width=2, signed=True).resize(4)
        assert value.to_bit_string() == "1110"

    def test_truncate(self):
        assert FourState.from_int(0xAB, width=8).resize(4).to_int() == 0xB

    def test_extend_unknown_msb(self):
        value = FourState.from_bits("x1").resize(4)
        assert value.to_bit_string() == "xxx1"

    def test_resize_same_width_identity(self):
        value = FourState.from_int(5, width=4)
        assert value.resize(4) is value


class TestAsFourState:
    def test_int_coercion(self):
        assert as_four_state(5).to_int() == 5

    def test_bool_coercion(self):
        assert as_four_state(True).width == 1

    def test_passthrough(self):
        value = FourState.from_int(1, width=1)
        assert as_four_state(value) is value


@given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(min_value=1, max_value=48))
def test_int_round_trip(value, width):
    """Property: from_int/to_int round-trips modulo the width mask."""
    v = FourState.from_int(value, width=width)
    assert v.to_int() == value % (1 << width)


@given(st.text(alphabet="01xz", min_size=1, max_size=40))
def test_bit_string_round_trip(bits):
    """Property: from_bits/to_bit_string is the identity."""
    assert FourState.from_bits(bits).to_bit_string() == bits


@given(st.integers(min_value=0, max_value=2**16 - 1), st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=32))
def test_resize_preserves_unsigned_value_when_growing(value, width, extra):
    """Property: zero-extension never changes the unsigned value."""
    v = FourState.from_int(value, width=width)
    assert v.resize(width + extra).to_int() == v.to_int()
