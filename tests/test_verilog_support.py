"""Tests for syntax checking, significant-token extraction and fragments."""

from hypothesis import given, settings, strategies as st

from repro.verilog.fragments import (
    FRAG,
    fragment_boundary_positions,
    insert_frag_markers,
    is_complete_fragment,
    segment_code,
    strip_frag_markers,
)
from repro.verilog.significant import EXTRA_KEYWORDS, extract_ast_keywords, extract_significant_tokens
from repro.verilog.syntax import check_syntax


class TestCheckSyntax:
    def test_valid_design(self, sample_design):
        result = check_syntax(sample_design)
        assert result.ok
        assert result.module_names == ["data_register"]
        assert result.errors == []

    def test_valid_multi_module(self, sample_design, sample_counter):
        result = check_syntax(sample_design + "\n" + sample_counter)
        assert result.ok
        assert set(result.module_names) == {"data_register", "counter"}

    def test_missing_endmodule(self):
        result = check_syntax("module broken(input a); assign x = a;")
        assert not result.ok
        assert result.errors

    def test_bad_token(self):
        assert not check_syntax("module m; wire \x01; endmodule").ok

    def test_empty_source(self):
        result = check_syntax("")
        assert not result.ok
        assert "empty" in result.errors[0]

    def test_whitespace_only(self):
        assert not check_syntax("   \n\t  ").ok

    def test_comment_only(self):
        assert not check_syntax("// just a comment\n").ok

    def test_check_never_raises_on_garbage(self):
        for garbage in ["{{{{", "module", "endmodule endmodule", "always @" * 10]:
            result = check_syntax(garbage)
            assert result.ok in (True, False)


class TestSignificantTokens:
    def test_ast_keywords_from_design(self, sample_design):
        keywords = extract_ast_keywords(sample_design)
        assert "data_register" in keywords
        assert "clk" in keywords
        assert "data_in" in keywords
        assert "data_out" in keywords
        assert "3" in keywords

    def test_ast_keywords_empty_for_invalid_code(self):
        assert extract_ast_keywords("not verilog at all") == []

    def test_extra_keywords_cover_paper_examples(self):
        # The paper explicitly lists negedge and endmodule as supplements.
        assert "negedge" in EXTRA_KEYWORDS
        assert "endmodule" in EXTRA_KEYWORDS
        assert "module" in EXTRA_KEYWORDS

    def test_significant_tokens_union(self, sample_design):
        tokens = extract_significant_tokens(sample_design)
        assert "data_register" in tokens
        assert "endmodule" in tokens
        # AST keywords come before the supplementary keyword block they are
        # not already part of.
        assert tokens.index("data_register") < tokens.index("negedge")

    def test_significant_tokens_no_duplicates(self, sample_counter):
        tokens = extract_significant_tokens(sample_counter)
        assert len(tokens) == len(set(tokens))

    def test_instance_and_function_names_extracted(self):
        source = """
module top;
    wire [7:0] c;
    counter u_count(.count(c));
    function [7:0] plus1; input [7:0] v; begin plus1 = v + 1; end endfunction
endmodule
module counter(output [7:0] count); assign count = 8'd0; endmodule
"""
        keywords = extract_ast_keywords(source)
        assert "u_count" in keywords
        assert "plus1" in keywords


class TestSegmentation:
    def test_segments_reassemble_to_source(self, sample_design):
        pieces = segment_code(sample_design)
        assert "".join(text for text, _ in pieces) == sample_design

    def test_significant_flags(self, sample_design):
        pieces = segment_code(sample_design)
        significant = [text for text, flag in pieces if flag]
        assert "module" in significant
        assert "data_register" in significant

    def test_keyword_does_not_split_identifier(self):
        # 'reg' is a significant keyword but must not split 'data_register'.
        pieces = segment_code("module m; reg data_register; endmodule")
        significant = [text for text, flag in pieces if flag]
        assert "data_register" in significant
        assert significant.count("reg") == 1

    def test_explicit_token_list(self):
        pieces = segment_code("assign y = a + b;", significant_tokens=["assign", "y"])
        significant = [text for text, flag in pieces if flag]
        assert significant == ["assign", "y"]


class TestFragMarkers:
    def test_strip_round_trip(self, sample_design):
        annotated = insert_frag_markers(sample_design)
        assert strip_frag_markers(annotated) == sample_design

    def test_markers_are_present(self, sample_design):
        annotated = insert_frag_markers(sample_design)
        assert annotated.count(FRAG) > 10
        assert f"{FRAG}module{FRAG}" in annotated

    def test_no_marker_runs(self, sample_design):
        annotated = insert_frag_markers(sample_design)
        assert FRAG + FRAG not in annotated

    def test_identifier_wrapped(self, sample_design):
        annotated = insert_frag_markers(sample_design)
        assert f"{FRAG}data_register{FRAG}" in annotated

    def test_is_complete_fragment(self):
        assert is_complete_fragment("")
        assert is_complete_fragment("   ")
        assert is_complete_fragment(f"{FRAG}module{FRAG}")
        assert is_complete_fragment(f"{FRAG}module{FRAG}  \n")
        assert not is_complete_fragment(f"{FRAG}modu")
        assert not is_complete_fragment("module")

    def test_fragment_boundary_positions(self):
        tokens = [FRAG, "module", FRAG, " ", "name", FRAG]
        assert fragment_boundary_positions(tokens) == [0, 2, 5]

    def test_insert_on_invalid_code_still_terminates(self):
        # Invalid code has no AST keywords; only the extra keywords segment it.
        annotated = insert_frag_markers("module broken without end")
        assert strip_frag_markers(annotated) == "module broken without end"


@settings(max_examples=30, deadline=None)
@given(st.sampled_from(["mux", "counter", "alu", "fsm", "register", "shifter"]), st.integers(0, 500))
def test_frag_round_trip_on_generated_designs(family, index):
    """Property: [FRAG] insertion is reversible on corpus designs."""
    from repro.data.corpus import CorpusConfig, SyntheticVerilogCorpus

    corpus = SyntheticVerilogCorpus(CorpusConfig(seed=7))
    item = corpus.generate_item(family, index)
    annotated = insert_frag_markers(item.code)
    assert strip_frag_markers(annotated) == item.code
    assert annotated.count(FRAG) >= 4
